package summarize

import (
	"osars/internal/coverage"
)

// LocalSearchOptions tune LocalSearch. The zero value uses defaults.
type LocalSearchOptions struct {
	// MaxRounds caps full improvement passes (default 20; the search
	// almost always converges in 2-3).
	MaxRounds int
	// MinImprovement is the smallest cost reduction that counts as an
	// improving swap (default 1e-9).
	MinImprovement float64
}

// LocalSearch is an extension beyond the paper's three algorithms: the
// classic single-swap local search for k-medians (Arya et al. 2004),
// seeded with the greedy summary. Each round scans all (selected,
// unselected) swaps, applying the best improving one, until no swap
// improves the cost. Swap deltas are evaluated in O(deg(u) + deg(v))
// using per-pair best and second-best distances, so a round costs
// O(k·|E|) rather than O(k·n·|E|).
//
// It can only improve on Greedy and, like any 1-swap local optimum for
// k-median, is within a constant factor of optimal.
func LocalSearch(g *coverage.Graph, k int, opt *LocalSearchOptions) *Result {
	checkK(g, k)
	var o LocalSearchOptions
	if opt != nil {
		o = *opt
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 20
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 1e-9
	}

	seed := Greedy(g, k)
	selected := make([]bool, g.NumCandidates)
	for _, u := range seed.Selected {
		selected[u] = true
	}
	cur := seed.Cost

	nPairs := len(g.Pairs)
	// best1/best2: smallest and second-smallest distance to each pair
	// over the selected set, with the root fallback folded in as a
	// virtual owner (-1).
	best1 := make([]int32, nPairs)
	own1 := make([]int32, nPairs)
	best2 := make([]int32, nPairs)
	recompute := func() {
		for w := range g.Pairs {
			best1[w], own1[w], best2[w] = g.RootDist[w], -1, g.RootDist[w]
			g.Coverers(w, func(u, dist int) bool {
				if !selected[u] {
					return true
				}
				d := int32(dist)
				switch {
				case d < best1[w] || (d == best1[w] && own1[w] == -1):
					best2[w] = best1[w]
					best1[w], own1[w] = d, int32(u)
				case d < best2[w]:
					best2[w] = d
				}
				return true
			})
		}
	}
	recompute()

	// swapDelta evaluates removing u and adding v. Affected pairs are
	// exactly cov(u) ∪ cov(v); a stamp array merges the two passes.
	stamp := make([]int32, nPairs)
	for i := range stamp {
		stamp[i] = -1
	}
	stampGen := int32(0)
	vDist := make([]int32, nPairs)
	swapDelta := func(u, v int) float64 {
		stampGen++
		delta := 0
		g.Covered(v, func(w, dist int) bool {
			stamp[w] = stampGen
			vDist[w] = int32(dist)
			return true
		})
		g.Covered(u, func(w, dist int) bool {
			newBest := best1[w]
			if own1[w] == int32(u) {
				newBest = best2[w]
			}
			if stamp[w] == stampGen {
				if vDist[w] < newBest {
					newBest = vDist[w]
				}
				stamp[w] = -1 // consumed; skip in v's pass below
			}
			delta += int(newBest-best1[w]) * int(g.Weight[w])
			return true
		})
		g.Covered(v, func(w, dist int) bool {
			if stamp[w] != stampGen {
				return true // already handled with u's coverage
			}
			if d := int32(dist); d < best1[w] {
				delta += int(d-best1[w]) * int(g.Weight[w])
			}
			return true
		})
		return float64(delta)
	}

	for round := 0; round < o.MaxRounds; round++ {
		bestU, bestV := -1, -1
		bestDelta := -o.MinImprovement
		for u := 0; u < g.NumCandidates; u++ {
			if !selected[u] {
				continue
			}
			for v := 0; v < g.NumCandidates; v++ {
				if selected[v] {
					continue
				}
				if d := swapDelta(u, v); d < bestDelta {
					bestDelta, bestU, bestV = d, u, v
				}
			}
		}
		if bestU < 0 {
			break // local optimum
		}
		selected[bestU] = false
		selected[bestV] = true
		cur += bestDelta
		recompute()
	}

	res := &Result{Selected: make([]int, 0, k), Cost: cur}
	for u, on := range selected {
		if on {
			res.Selected = append(res.Selected, u)
		}
	}
	// Guard against float drift in the accumulated cost.
	res.Cost = g.CostOf(res.Selected)
	return res
}
