package summarize

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"osars/internal/coverage"
	"osars/internal/model"
	"osars/internal/ontology"
)

// requireSameResult asserts two greedy results are identical in
// selection order and cost.
func requireSameResult(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.Selected, want.Selected) {
		t.Fatalf("%s: Selected = %v, want %v", label, got.Selected, want.Selected)
	}
	if got.Cost != want.Cost {
		t.Fatalf("%s: Cost = %v, want %v", label, got.Cost, want.Cost)
	}
}

// TestGreedyWarmMatchesColdOnBatchGraphs checks the identity guarantee
// on graphs WITHOUT maintained gains (InitGains == nil): GreedyWarm
// must fall through to the cold key scan and select identically.
func TestGreedyWarmMatchesColdOnBatchGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng, 10, 20)
		if trial%2 == 1 {
			g = randomGroupGraph(rng)
		}
		for _, k := range []int{0, 1, 2, g.NumCandidates / 2, g.NumCandidates} {
			if k > g.NumCandidates {
				continue
			}
			cold := Greedy(g, k)
			warmRes, _ := GreedyWarm(g, k, nil)
			requireSameResult(t, warmRes, cold, fmt.Sprintf("trial%d/k=%d", trial, k))
			// Seeding with the cold result must not change the answer
			// either, and must report a hit (same graph, same keys).
			seeded, hit := GreedyWarm(g, k, cold)
			requireSameResult(t, seeded, cold, fmt.Sprintf("trial%d/k=%d/seeded", trial, k))
			if !hit {
				t.Fatalf("trial%d/k=%d: replaying the cold selection on the same graph was not a warm hit", trial, k)
			}
		}
	}
}

// warmTestItem builds a random annotated item over a small DAG.
func warmTestItem(rng *rand.Rand, o *ontology.Ontology, reviews int) *model.Item {
	item := &model.Item{ID: "w", Name: "w"}
	for ri := 0; ri < reviews; ri++ {
		r := model.Review{ID: fmt.Sprintf("r%d", ri)}
		for si := 0; si < 1+rng.Intn(3); si++ {
			s := model.Sentence{Text: fmt.Sprintf("s%d/%d", ri, si)}
			for pi := 0; pi < rng.Intn(4); pi++ {
				s.Pairs = append(s.Pairs, model.Pair{
					Concept:   ontology.ConceptID(rng.Intn(o.Len())),
					Sentiment: float64(rng.Intn(21)-10) / 10,
				})
			}
			r.Sentences = append(r.Sentences, s)
		}
		item.Reviews = append(item.Reviews, r)
	}
	return item
}

// TestGreedyWarmMatchesColdOnIndexGraphs is the tentpole guarantee:
// over an appending corpus, warm-start greedy on the index-frozen
// graph (maintained InitGains, previous selection as seed) returns a
// result identical to cold Greedy on a from-scratch build — at every
// append step, every granularity, every tested k.
func TestGreedyWarmMatchesColdOnIndexGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var b ontology.Builder
	root := b.AddConcept("root")
	ids := []ontology.ConceptID{root}
	for i := 0; i < 12; i++ {
		ids = append(ids, b.Child(ids[rng.Intn(len(ids))], fmt.Sprintf("c%d", i)))
	}
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := model.Metric{Ont: o, Epsilon: 0.3}

	for trial := 0; trial < 8; trial++ {
		item := warmTestItem(rng, o, 10)
		for _, gran := range []model.Granularity{
			model.GranularityPairs, model.GranularitySentences, model.GranularityReviews,
		} {
			idx := coverage.NewIndex(m, gran)
			var prev *Result
			for n := 1; n <= len(item.Reviews); n++ {
				idx.Merge(item.Reviews[n-1 : n])
				g := idx.Freeze()
				coldG := coverage.Build(m, &model.Item{ID: item.ID, Reviews: item.Reviews[:n]}, gran)
				k := 3
				if k > g.NumCandidates {
					k = g.NumCandidates
				}
				cold := Greedy(coldG, k)
				warmRes, _ := GreedyWarm(g, k, prev)
				requireSameResult(t, warmRes, cold,
					fmt.Sprintf("trial%d/%v/n=%d/k=%d", trial, gran, n, k))
				prev = warmRes
			}
		}
	}
}

// TestGreedyWarmHitSemantics pins the warm flag: a hit requires a
// previous result covering at least k steps that replays exactly.
func TestGreedyWarmHitSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomGroupGraph(rng)
	k := 3
	if k > g.NumCandidates {
		k = g.NumCandidates
	}
	cold := Greedy(g, k)

	if _, hit := GreedyWarm(g, k, nil); hit {
		t.Fatal("nil prev reported a warm hit")
	}
	if k > 1 {
		short := &Result{Selected: cold.Selected[:k-1]}
		if _, hit := GreedyWarm(g, k, short); hit {
			t.Fatal("a prev shorter than k reported a warm hit")
		}
		wrong := &Result{Selected: append([]int(nil), cold.Selected...)}
		wrong.Selected[0], wrong.Selected[k-1] = wrong.Selected[k-1], wrong.Selected[0]
		res, hit := GreedyWarm(g, k, wrong)
		if hit {
			t.Fatal("a diverging prev reported a warm hit")
		}
		requireSameResult(t, res, cold, "diverging prev")
	}
	if _, hit := GreedyWarm(g, k, cold); !hit {
		t.Fatal("replaying the exact previous selection was not a hit")
	}
}
