package summarize

import (
	"fmt"

	"osars/internal/model"
	"osars/internal/ontology"
)

// SetCoverInstance is an instance (S, U, k) of Set Cover: Universe
// elements are 0..Universe-1 and each set lists the elements it
// contains.
type SetCoverInstance struct {
	Universe int
	Sets     [][]int
}

// Reduction is the paper's §3 gadget mapping a Set Cover instance to a
// k-Pairs Coverage instance (Fig 2):
//
//   - a DAG with root r; for each set Sᵢ, concepts cᵢ (child of r) and
//     eᵢ (child of cᵢ); for each element uⱼ, a concept dⱼ that is a
//     child of cᵢ for every set Sᵢ containing uⱼ;
//   - 2m+n pairs, one per non-root concept, all with sentiment 0;
//   - target cost t = 3m + n − 2k.
//
// Theorem 1: S has a set cover of size k iff the k-Pairs instance has
// a size-k summary of cost ≤ t.
type Reduction struct {
	Metric model.Metric
	Pairs  []model.Pair
	// CPair[i] is the index in Pairs of set Sᵢ's cᵢ pair, so a summary
	// can be translated back to a candidate set cover.
	CPair []int
	// Target is t = 3m + n − 2k.
	Target float64
	K      int
}

// NewReduction builds the gadget for the given instance and summary
// size k. It fails if an element belongs to no set (the Set Cover
// instance itself is then unsatisfiable and the gadget DAG would leave
// dⱼ unreachable).
func NewReduction(inst SetCoverInstance, k int) (*Reduction, error) {
	m := len(inst.Sets)
	n := inst.Universe
	if k > m {
		return nil, fmt.Errorf("summarize: reduction k = %d exceeds number of sets %d", k, m)
	}
	var b ontology.Builder
	root := b.AddConcept("r")
	c := make([]ontology.ConceptID, m)
	e := make([]ontology.ConceptID, m)
	for i := 0; i < m; i++ {
		c[i] = b.Child(root, fmt.Sprintf("c%d", i))
		e[i] = b.Child(c[i], fmt.Sprintf("e%d", i))
	}
	d := make([]ontology.ConceptID, n)
	seen := make([]bool, n)
	for i, set := range inst.Sets {
		for _, u := range set {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("summarize: reduction element %d out of universe [0,%d)", u, n)
			}
			if !seen[u] {
				d[u] = b.AddConcept(fmt.Sprintf("d%d", u))
				seen[u] = true
			}
			if err := b.AddEdge(c[i], d[u]); err != nil {
				return nil, err
			}
		}
	}
	for u := 0; u < n; u++ {
		if !seen[u] {
			return nil, fmt.Errorf("summarize: element %d belongs to no set", u)
		}
	}
	ont, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := &Reduction{
		Metric: model.Metric{Ont: ont, Epsilon: 0.5},
		CPair:  make([]int, m),
		Target: float64(3*m + n - 2*k),
		K:      k,
	}
	// One pair per non-root concept, all with sentiment 0; cᵢ pairs
	// first so CPair is easy to track.
	for i := 0; i < m; i++ {
		r.CPair[i] = len(r.Pairs)
		r.Pairs = append(r.Pairs, model.Pair{Concept: c[i]})
	}
	for i := 0; i < m; i++ {
		r.Pairs = append(r.Pairs, model.Pair{Concept: e[i]})
	}
	for u := 0; u < n; u++ {
		r.Pairs = append(r.Pairs, model.Pair{Concept: d[u]})
	}
	return r, nil
}

// CoverFromSummary translates a summary (pair indices) back to the
// sets whose cᵢ pair was selected.
func (r *Reduction) CoverFromSummary(selected []int) []int {
	inv := make(map[int]int, len(r.CPair))
	for set, pairIdx := range r.CPair {
		inv[pairIdx] = set
	}
	var cover []int
	for _, s := range selected {
		if set, ok := inv[s]; ok {
			cover = append(cover, set)
		}
	}
	return cover
}

// IsCover reports whether the listed sets cover the whole universe.
func (inst SetCoverInstance) IsCover(sets []int) bool {
	covered := make([]bool, inst.Universe)
	count := 0
	for _, s := range sets {
		for _, u := range inst.Sets[s] {
			if !covered[u] {
				covered[u] = true
				count++
			}
		}
	}
	return count == inst.Universe
}

// HasCoverOfSize answers, by enumeration, whether a set cover of size
// exactly k exists (test oracle; exponential).
func (inst SetCoverInstance) HasCoverOfSize(k int) bool {
	m := len(inst.Sets)
	if k > m {
		return false
	}
	sel := make([]int, k)
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == k {
			return inst.IsCover(sel)
		}
		for i := start; i <= m-(k-depth); i++ {
			sel[depth] = i
			if rec(i+1, depth+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}
