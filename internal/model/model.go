// Package model defines the data model of the summarization framework
// (paper §2): concept-sentiment pairs, sentences, reviews and items,
// together with the directed pair distance (Definition 1) and the
// summary cost (Definition 2).
package model

import (
	"fmt"
	"math"

	"osars/internal/ontology"
)

// Pair is a concept-sentiment pair (c, s): one occurrence of concept c
// in a review with estimated sentiment s ∈ [-1, +1].
type Pair struct {
	Concept   ontology.ConceptID `json:"concept"`
	Sentiment float64            `json:"sentiment"`
}

func (p Pair) String() string {
	return fmt.Sprintf("(%d, %+.2f)", p.Concept, p.Sentiment)
}

// Sentence is one review sentence with the pairs extracted from it.
type Sentence struct {
	Text  string `json:"text"`
	Pairs []Pair `json:"pairs,omitempty"`
}

// Review is a customer review: an ordered list of sentences plus an
// overall star rating normalized to [-1, +1] (used to train the
// regression sentiment estimator, §5.1).
type Review struct {
	ID        string     `json:"id"`
	Rating    float64    `json:"rating"`
	Sentences []Sentence `json:"sentences"`
}

// Pairs returns all concept-sentiment pairs of the review, in sentence
// order.
func (r *Review) Pairs() []Pair {
	var out []Pair
	for _, s := range r.Sentences {
		out = append(out, s.Pairs...)
	}
	return out
}

// Item is the unit being summarized (a doctor, a phone): a set of
// reviews.
type Item struct {
	ID      string   `json:"id"`
	Name    string   `json:"name"`
	Reviews []Review `json:"reviews"`
}

// Pairs returns the multiset P of all concept-sentiment pairs of all
// reviews of the item.
func (it *Item) Pairs() []Pair {
	var out []Pair
	for i := range it.Reviews {
		out = append(out, it.Reviews[i].Pairs()...)
	}
	return out
}

// NumSentences counts the sentences across all reviews.
func (it *Item) NumSentences() int {
	n := 0
	for i := range it.Reviews {
		n += len(it.Reviews[i].Sentences)
	}
	return n
}

// Granularity selects which unit a summary is made of (§2: "a
// representative is a concept-sentiment pair, or a sentence from a
// review, or a whole review").
type Granularity int

const (
	// GranularityPairs selects k concept-sentiment pairs
	// (k-Pairs Coverage).
	GranularityPairs Granularity = iota
	// GranularitySentences selects k sentences
	// (k-Sentences Coverage).
	GranularitySentences
	// GranularityReviews selects k whole reviews
	// (k-Reviews Coverage).
	GranularityReviews
)

func (g Granularity) String() string {
	switch g {
	case GranularityPairs:
		return "pairs"
	case GranularitySentences:
		return "sentences"
	case GranularityReviews:
		return "reviews"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Infinite is the distance reported between pairs that do not cover
// each other (the ∞ branch of Definition 1).
const Infinite = math.MaxInt32

// Metric evaluates Definition 1 and Definition 2 over one ontology
// with a fixed sentiment threshold ε. Metric is a small value type;
// copy it freely. Its methods are safe for concurrent use.
type Metric struct {
	Ont *ontology.Ontology
	// Epsilon is the sentiment threshold ε > 0: a non-root ancestor
	// pair covers a pair only if their sentiments differ by at most ε.
	Epsilon float64
}

// PairDistance returns the directed distance d(p1, p2) of Definition 1:
//
//	d(r, c2)    if p1's concept is the root r (any sentiments), else
//	d(c1, c2)   if c1 is an ancestor of c2 and |s1-s2| ≤ ε, else
//	Infinite.
//
// A concept counts as an ancestor of itself (distance 0).
func (m Metric) PairDistance(p1, p2 Pair) int {
	if p1.Concept == m.Ont.Root() {
		return m.Ont.Depth(p2.Concept)
	}
	if math.Abs(p1.Sentiment-p2.Sentiment) > m.Epsilon {
		return Infinite
	}
	if d := m.Ont.UpDistance(p2.Concept, p1.Concept); d >= 0 {
		return d
	}
	return Infinite
}

// Covers reports whether p1 covers p2 (finite Definition-1 distance).
func (m Metric) Covers(p1, p2 Pair) bool {
	return m.PairDistance(p1, p2) < Infinite
}

// DistanceToPair returns d(F, p) = min over f in F ∪ {root} of
// d(f, p) (Definition 2). The implicit root pair guarantees the result
// is finite: at worst the root covers p at distance Depth(p.Concept).
func (m Metric) DistanceToPair(summary []Pair, p Pair) int {
	best := m.Ont.Depth(p.Concept) // the implicit root r
	for _, f := range summary {
		if d := m.PairDistance(f, p); d < best {
			best = d
		}
	}
	return best
}

// Cost returns C(F, P) = Σ_{p∈P} d(F, p) (Definition 2). This is the
// reference (quadratic) implementation used by tests and the evaluator;
// the algorithms use the precomputed coverage graph instead.
func (m Metric) Cost(summary, pairs []Pair) float64 {
	total := 0
	for _, p := range pairs {
		total += m.DistanceToPair(summary, p)
	}
	return float64(total)
}

// GroupDistanceToPair returns the distance from a candidate group of
// pairs (a sentence or whole review, §4.5) to pair p: the minimum
// Definition-1 distance over the group's pairs, or Infinite if none
// covers p. The implicit root is NOT included here — it is added at
// the summary level by GroupCost.
func (m Metric) GroupDistanceToPair(group []Pair, p Pair) int {
	best := Infinite
	for _, f := range group {
		if d := m.PairDistance(f, p); d < best {
			best = d
		}
	}
	return best
}

// GroupCost returns C(P(X), P) where X is a set of candidate groups
// (sentences or reviews): each pair of P is charged its distance to the
// closest pair in the union of the groups, with the root as fallback.
func (m Metric) GroupCost(groups [][]Pair, pairs []Pair) float64 {
	total := 0
	for _, p := range pairs {
		best := m.Ont.Depth(p.Concept)
		for _, g := range groups {
			if d := m.GroupDistanceToPair(g, p); d < best {
				best = d
			}
		}
		total += best
	}
	return float64(total)
}
