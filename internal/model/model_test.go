package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osars/internal/ontology"
)

// chain builds root -> mid -> leaf plus a sibling of mid.
func chain(t *testing.T) (*ontology.Ontology, map[string]ontology.ConceptID) {
	t.Helper()
	var b ontology.Builder
	ids := map[string]ontology.ConceptID{}
	ids["root"] = b.AddConcept("root")
	ids["mid"] = b.Child(ids["root"], "mid")
	ids["leaf"] = b.Child(ids["mid"], "leaf")
	ids["sib"] = b.Child(ids["root"], "sib")
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return o, ids
}

func TestPairDistanceDefinition1(t *testing.T) {
	o, ids := chain(t)
	m := Metric{Ont: o, Epsilon: 0.5}
	root, mid, leaf, sib := ids["root"], ids["mid"], ids["leaf"], ids["sib"]
	cases := []struct {
		name   string
		p1, p2 Pair
		want   int
	}{
		{"root covers anything regardless of sentiment",
			Pair{root, -1}, Pair{leaf, +1}, 2},
		{"root covers itself at 0",
			Pair{root, 0}, Pair{root, 0.9}, 0},
		{"ancestor within epsilon",
			Pair{mid, 0.3}, Pair{leaf, 0.6}, 1},
		{"same concept within epsilon",
			Pair{leaf, 0.1}, Pair{leaf, 0.4}, 0},
		{"ancestor outside epsilon",
			Pair{mid, 0.0}, Pair{leaf, 0.6}, Infinite},
		{"epsilon boundary is inclusive",
			Pair{mid, 0.0}, Pair{leaf, 0.5}, 1},
		{"descendant cannot cover ancestor",
			Pair{leaf, 0.0}, Pair{mid, 0.0}, Infinite},
		{"sibling cannot cover",
			Pair{sib, 0.0}, Pair{leaf, 0.0}, Infinite},
	}
	for _, c := range cases {
		if got := m.PairDistance(c.p1, c.p2); got != c.want {
			t.Errorf("%s: d(%v,%v) = %d, want %d", c.name, c.p1, c.p2, got, c.want)
		}
		if gotCov, wantCov := m.Covers(c.p1, c.p2), c.want < Infinite; gotCov != wantCov {
			t.Errorf("%s: Covers = %v, want %v", c.name, gotCov, wantCov)
		}
	}
}

func TestDistanceToPairUsesRootFallback(t *testing.T) {
	o, ids := chain(t)
	m := Metric{Ont: o, Epsilon: 0.5}
	p := Pair{ids["leaf"], 0.9}
	// Summary that cannot cover p: distance must fall back to the
	// root's distance, i.e. the depth of leaf = 2.
	if got := m.DistanceToPair([]Pair{{ids["sib"], 0.9}}, p); got != 2 {
		t.Fatalf("DistanceToPair = %d, want root fallback 2", got)
	}
	// Empty summary: also depth.
	if got := m.DistanceToPair(nil, p); got != 2 {
		t.Fatalf("DistanceToPair(nil) = %d, want 2", got)
	}
	// A covering pair beats the root.
	if got := m.DistanceToPair([]Pair{{ids["mid"], 0.8}}, p); got != 1 {
		t.Fatalf("DistanceToPair = %d, want 1", got)
	}
}

func TestCostDefinition2(t *testing.T) {
	o, ids := chain(t)
	m := Metric{Ont: o, Epsilon: 0.5}
	P := []Pair{
		{ids["leaf"], 0.9}, // covered by (mid,0.8) at 1
		{ids["mid"], 0.7},  // covered by (mid,0.8) at 0
		{ids["sib"], -0.9}, // only root covers: depth 1
	}
	F := []Pair{{ids["mid"], 0.8}}
	if got := m.Cost(F, P); got != 2 {
		t.Fatalf("Cost = %v, want 2", got)
	}
	// Empty summary cost = sum of depths = 2 + 1 + 1.
	if got := m.Cost(nil, P); got != 4 {
		t.Fatalf("Cost(nil) = %v, want 4", got)
	}
}

func TestGroupCost(t *testing.T) {
	o, ids := chain(t)
	m := Metric{Ont: o, Epsilon: 0.5}
	P := []Pair{{ids["leaf"], 0.9}, {ids["sib"], -0.9}}
	// One group (a sentence) holding both a mid and a sib pair covers
	// both: leaf at 1 via mid, sib at 0.
	g := [][]Pair{{{ids["mid"], 0.8}, {ids["sib"], -0.8}}}
	if got := m.GroupCost(g, P); got != 1 {
		t.Fatalf("GroupCost = %v, want 1", got)
	}
	if got := m.GroupCost(nil, P); got != 3 {
		t.Fatalf("GroupCost(nil) = %v, want 3 (depths)", got)
	}
}

func TestGroupDistanceToPair(t *testing.T) {
	o, ids := chain(t)
	m := Metric{Ont: o, Epsilon: 0.5}
	p := Pair{ids["leaf"], 0.9}
	group := []Pair{{ids["sib"], 0.9}, {ids["mid"], 0.8}}
	if got := m.GroupDistanceToPair(group, p); got != 1 {
		t.Fatalf("GroupDistanceToPair = %d, want 1", got)
	}
	if got := m.GroupDistanceToPair([]Pair{{ids["sib"], 0.9}}, p); got != Infinite {
		t.Fatalf("GroupDistanceToPair = %d, want Infinite", got)
	}
}

func TestReviewAndItemPairs(t *testing.T) {
	r := Review{
		ID: "r1",
		Sentences: []Sentence{
			{Text: "a", Pairs: []Pair{{1, 0.5}, {2, -0.5}}},
			{Text: "b", Pairs: []Pair{{3, 0.0}}},
			{Text: "c"}, // no pairs
		},
	}
	if got := r.Pairs(); len(got) != 3 {
		t.Fatalf("Review.Pairs len = %d, want 3", len(got))
	}
	it := Item{Reviews: []Review{r, {Sentences: []Sentence{{Pairs: []Pair{{4, 1}}}}}}}
	if got := it.Pairs(); len(got) != 4 {
		t.Fatalf("Item.Pairs len = %d, want 4", len(got))
	}
	if got := it.NumSentences(); got != 4 {
		t.Fatalf("NumSentences = %d, want 4", got)
	}
}

func TestGranularityString(t *testing.T) {
	if GranularityPairs.String() != "pairs" ||
		GranularitySentences.String() != "sentences" ||
		GranularityReviews.String() != "reviews" {
		t.Fatal("Granularity strings wrong")
	}
	if Granularity(99).String() == "" {
		t.Fatal("unknown granularity should still stringify")
	}
}

// randomInstance builds a random DAG ontology and pair multiset.
func randomInstance(rng *rand.Rand) (Metric, []Pair) {
	var b ontology.Builder
	n := 2 + rng.Intn(20)
	ids := make([]ontology.ConceptID, n)
	ids[0] = b.AddConcept("c0")
	for i := 1; i < n; i++ {
		ids[i] = b.AddConcept("c" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		b.AddEdge(ids[rng.Intn(i)], ids[i])
		if rng.Intn(3) == 0 && i >= 2 {
			b.AddEdge(ids[rng.Intn(i)], ids[i])
		}
	}
	o, err := b.Build()
	if err != nil {
		panic(err)
	}
	P := make([]Pair, 1+rng.Intn(30))
	for i := range P {
		P[i] = Pair{ids[rng.Intn(n)], math.Round(rng.Float64()*20-10) / 10}
	}
	return Metric{Ont: o, Epsilon: 0.5}, P
}

// Property: cost is monotone non-increasing as the summary grows
// (adding a pair can only reduce each min term).
func TestQuickCostMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, P := randomInstance(rng)
		var F []Pair
		prev := m.Cost(F, P)
		for i := 0; i < 5 && i < len(P); i++ {
			F = append(F, P[rng.Intn(len(P))])
			cur := m.Cost(F, P)
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the coverage-gain function g(F) = C(∅,P) - C(F,P) is
// submodular: the marginal gain of adding pair x to F is at least its
// marginal gain when added to a superset F ∪ {y}. This is the property
// Wolsey's greedy bound (Theorem 4) relies on.
func TestQuickSubmodularity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, P := randomInstance(rng)
		if len(P) < 3 {
			return true
		}
		for trial := 0; trial < 10; trial++ {
			F := []Pair{P[rng.Intn(len(P))]}
			x := P[rng.Intn(len(P))]
			y := P[rng.Intn(len(P))]
			gainSmall := m.Cost(F, P) - m.Cost(append(append([]Pair{}, F...), x), P)
			Fy := append(append([]Pair{}, F...), y)
			gainBig := m.Cost(Fy, P) - m.Cost(append(append([]Pair{}, Fy...), x), P)
			if gainSmall < gainBig-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every distance returned by DistanceToPair is at most the
// root fallback (the pair's depth) and non-negative.
func TestQuickDistanceBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, P := randomInstance(rng)
		F := P[:len(P)/2]
		for _, p := range P {
			d := m.DistanceToPair(F, p)
			if d < 0 || d > m.Ont.Depth(p.Concept) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
