package pos

import "testing"

func TestTagWordLexicon(t *testing.T) {
	cases := map[string]Tag{
		"the": Det, "i": Pron, "of": Prep, "and": Conj, "not": Neg,
		"is": Verb, "great": Adj, "very": Adv, "battery": Noun,
	}
	for w, want := range cases {
		if got := TagWord(w); got != want {
			t.Errorf("TagWord(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestTagWordSuffixRules(t *testing.T) {
	cases := map[string]Tag{
		"suddenly":   Adv,
		"gorgeous":   Adj,
		"dependable": Adj,
		"customize":  Verb,
		"stuttering": Verb,
		"shattered":  Verb,
		"widget":     Noun, // unknown default
		"3":          Num,
		"4.5":        Num,
	}
	for w, want := range cases {
		if got := TagWord(w); got != want {
			t.Errorf("TagWord(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestTagWordEmpty(t *testing.T) {
	if TagWord("") != Other {
		t.Fatal("empty word should be Other")
	}
}

func TestTagSentenceContextRepair(t *testing.T) {
	// "the charging" → charging must flip Verb→Noun after determiner.
	tags := TagSentence([]string{"the", "charging", "is", "slow"})
	if tags[1].Tag != Noun {
		t.Fatalf("charging after det = %v, want Noun", tags[1].Tag)
	}
	if tags[3].Tag != Adj {
		t.Fatalf("slow = %v, want Adj", tags[3].Tag)
	}
}

func TestTagSentenceLengths(t *testing.T) {
	if got := TagSentence(nil); len(got) != 0 {
		t.Fatal("nil sentence should give empty tags")
	}
	toks := []string{"great", "screen"}
	tags := TagSentence(toks)
	if len(tags) != 2 || tags[0].Word != "great" || tags[1].Word != "screen" {
		t.Fatalf("TagSentence = %v", tags)
	}
}

func TestTagStrings(t *testing.T) {
	want := map[Tag]string{
		Noun: "NOUN", Verb: "VERB", Adj: "ADJ", Adv: "ADV",
		Pron: "PRON", Det: "DET", Prep: "PREP", Conj: "CONJ",
		Num: "NUM", Neg: "NEG", Other: "OTHER",
	}
	for tag, s := range want {
		if tag.String() != s {
			t.Errorf("%d.String() = %q, want %q", tag, tag.String(), s)
		}
	}
}

func TestReviewSentenceEndToEnd(t *testing.T) {
	tags := TagSentence([]string{"the", "battery", "is", "not", "very", "good"})
	want := []Tag{Det, Noun, Verb, Neg, Adv, Adj}
	for i, w := range want {
		if tags[i].Tag != w {
			t.Errorf("token %d (%s) = %v, want %v", i, tags[i].Word, tags[i].Tag, w)
		}
	}
}
