// Package pos is a compact lexicon- and suffix-rule part-of-speech
// tagger. It substitutes for the dependency parser the double
// propagation aspect extractor (Qiu et al. 2011) consumes in the paper
// (§5.1): propagation only needs to tell nouns, adjectives, adverbs,
// verbs and a few closed classes apart on short review sentences, so a
// rule tagger with a core English lexicon suffices.
package pos

import (
	"strings"
	"unicode"
)

// Tag is a coarse part-of-speech tag.
type Tag uint8

// The tag set. Coarse by design: double propagation and the sentiment
// scorer only branch on these classes.
const (
	Noun Tag = iota
	Verb
	Adj
	Adv
	Pron
	Det
	Prep
	Conj
	Num
	Neg // explicit negation tokens: not, never, n't …
	Other
)

func (t Tag) String() string {
	switch t {
	case Noun:
		return "NOUN"
	case Verb:
		return "VERB"
	case Adj:
		return "ADJ"
	case Adv:
		return "ADV"
	case Pron:
		return "PRON"
	case Det:
		return "DET"
	case Prep:
		return "PREP"
	case Conj:
		return "CONJ"
	case Num:
		return "NUM"
	case Neg:
		return "NEG"
	default:
		return "OTHER"
	}
}

// closed-class and core open-class lexicon. Review vocabulary is
// heavily skewed; a small curated lexicon plus suffix rules covers it
// well.
var lexicon = map[string]Tag{
	// determiners
	"a": Det, "an": Det, "the": Det, "this": Det, "that": Det,
	"these": Det, "those": Det, "some": Det, "any": Det, "each": Det,
	"every": Det, "no": Det, "another": Det, "such": Det,
	"both": Det, "all": Det, "few": Det, "many": Det, "much": Det,
	"several": Det, "most": Det, "other": Det, "own": Det,
	// pronouns
	"i": Pron, "me": Pron, "my": Pron, "we": Pron, "us": Pron,
	"our": Pron, "you": Pron, "your": Pron, "he": Pron, "him": Pron,
	"his": Pron, "she": Pron, "her": Pron, "it": Pron, "its": Pron,
	"they": Pron, "them": Pron, "their": Pron, "who": Pron,
	"what": Pron, "which": Pron, "anyone": Pron, "everyone": Pron,
	"something": Pron, "anything": Pron, "everything": Pron,
	// prepositions
	"of": Prep, "in": Prep, "on": Prep, "at": Prep, "by": Prep,
	"for": Prep, "with": Prep, "about": Prep, "from": Prep, "to": Prep,
	"into": Prep, "over": Prep, "under": Prep, "after": Prep,
	"before": Prep, "between": Prep, "during": Prep, "without": Prep,
	"through": Prep, "against": Prep,
	// conjunctions
	"and": Conj, "or": Conj, "but": Conj, "because": Conj, "if": Conj,
	"while": Conj, "although": Conj, "though": Conj, "since": Conj,
	"so": Conj, "than": Conj, "when": Conj, "as": Conj,
	// negations
	"not": Neg, "never": Neg, "no one": Neg, "nothing": Neg,
	"neither": Neg, "nor": Neg, "cannot": Neg, "n't": Neg,
	"dont": Neg, "didnt": Neg, "wont": Neg, "cant": Neg,
	"doesnt": Neg, "isnt": Neg, "wasnt": Neg, "arent": Neg,
	"werent": Neg, "hardly": Neg, "barely": Neg, "scarcely": Neg,
	// auxiliaries / common verbs
	"am": Verb, "is": Verb, "are": Verb, "was": Verb, "were": Verb,
	"be": Verb, "been": Verb, "being": Verb, "have": Verb, "has": Verb,
	"had": Verb, "do": Verb, "does": Verb, "did": Verb, "will": Verb,
	"would": Verb, "can": Verb, "could": Verb, "should": Verb,
	"may": Verb, "might": Verb, "must": Verb, "shall": Verb,
	"get": Verb, "got": Verb, "gets": Verb, "getting": Verb,
	"go": Verb, "went": Verb, "goes": Verb, "make": Verb, "makes": Verb,
	"made": Verb, "take": Verb, "takes": Verb, "took": Verb,
	"come": Verb, "came": Verb, "comes": Verb, "see": Verb, "saw": Verb,
	"know": Verb, "knew": Verb, "think": Verb, "thought": Verb,
	"feel": Verb, "felt": Verb, "say": Verb, "said": Verb,
	"found": Verb, "find": Verb, "finds": Verb, "walked": Verb,
	"ordered": Verb, "paid": Verb, "pay": Verb, "sat": Verb,
	"tell": Verb, "told": Verb, "give": Verb, "gave": Verb,
	"keep": Verb, "kept": Verb, "let": Verb, "seem": Verb,
	"seems": Verb, "seemed": Verb, "work": Verb, "works": Verb,
	"worked": Verb, "use": Verb, "used": Verb, "uses": Verb,
	"buy": Verb, "bought": Verb, "recommend": Verb, "recommends": Verb,
	"love": Verb, "loved": Verb, "loves": Verb, "hate": Verb,
	"hated": Verb, "like": Verb, "liked": Verb, "likes": Verb,
	"want": Verb, "wanted": Verb, "need": Verb, "needed": Verb,
	"try": Verb, "tried": Verb, "wish": Verb, "broke": Verb,
	"breaks": Verb, "lasted": Verb, "lasts": Verb, "charge": Verb,
	"charges": Verb, "returned": Verb, "return": Verb,
	"waited": Verb, "listens": Verb, "listen": Verb, "listened": Verb,
	"explains": Verb, "explain": Verb, "explained": Verb,
	"cares": Verb, "care": Verb, "cared": Verb, "treats": Verb,
	"treat": Verb, "treated": Verb, "helped": Verb, "helps": Verb,
	"help": Verb, "answered": Verb, "answers": Verb, "answer": Verb,
	// core adjectives (incl. review-domain sentiment adjectives)
	"good": Adj, "great": Adj, "bad": Adj, "best": Adj, "worst": Adj,
	"better": Adj, "worse": Adj, "nice": Adj, "poor": Adj,
	"excellent": Adj, "terrible": Adj, "awful": Adj, "amazing": Adj,
	"awesome": Adj, "horrible": Adj, "fantastic": Adj, "perfect": Adj,
	"wonderful": Adj, "outstanding": Adj, "superb": Adj, "fine": Adj,
	"decent": Adj, "solid": Adj, "cheap": Adj, "expensive": Adj,
	"fast": Adj, "slow": Adj, "quick": Adj, "long": Adj, "short": Adj,
	"big": Adj, "small": Adj, "large": Adj, "huge": Adj, "tiny": Adj,
	"new": Adj, "old": Adj, "easy": Adj, "hard": Adj, "sharp": Adj,
	"bright": Adj, "dim": Adj, "clear": Adj, "crisp": Adj,
	"smooth": Adj, "rough": Adj, "loud": Adj, "quiet": Adj,
	"clean": Adj, "dirty": Adj, "happy": Adj, "sad": Adj,
	"rude": Adj, "kind": Adj, "gentle": Adj, "patient": Adj,
	"thorough": Adj, "caring": Adj, "friendly": Adj, "professional": Adj,
	"knowledgeable": Adj, "attentive": Adj, "compassionate": Adj,
	"courteous": Adj, "helpful": Adj, "responsive": Adj,
	"sturdy": Adj, "flimsy": Adj, "durable": Adj, "reliable": Adj,
	"unreliable": Adj, "defective": Adj, "broken": Adj, "smart": Adj,
	"stupid": Adj, "beautiful": Adj, "ugly": Adj, "sleek": Adj,
	"bulky": Adj, "light": Adj, "heavy": Adj, "thin": Adj,
	"thick": Adj, "late": Adj, "early": Adj, "right": Adj,
	"wrong": Adj, "free": Adj, "full": Adj, "empty": Adj, "weak": Adj,
	"strong": Adj, "low": Adj, "high": Adj, "crappy": Adj,
	"mediocre": Adj, "disappointing": Adj, "impressive": Adj,
	"overpriced": Adj, "affordable": Adj, "stunning": Adj,
	"vivid": Adj, "dull": Adj, "snappy": Adj, "laggy": Adj,
	"glitchy": Adj, "buggy": Adj,
	// core adverbs
	"very": Adv, "really": Adv, "extremely": Adv, "quite": Adv,
	"too": Adv, "somewhat": Adv, "rather": Adv, "pretty": Adv,
	"fairly": Adv, "incredibly": Adv, "super": Adv, "highly": Adv,
	"totally": Adv, "absolutely": Adv, "slightly": Adv, "almost": Adv,
	"always": Adv, "often": Adv, "sometimes": Adv, "usually": Adv,
	"rarely": Adv, "here": Adv, "there": Adv, "again": Adv,
	"still": Adv, "already": Adv, "just": Adv, "even": Adv,
	"also": Adv, "well": Adv, "now": Adv, "then": Adv, "ever": Adv,
	"away": Adv, "back": Adv, "however": Adv,
	// common review nouns that suffix rules would misclassify
	"battery": Noun, "screen": Noun, "display": Noun, "camera": Noun,
	"price": Noun, "phone": Noun, "doctor": Noun, "staff": Noun,
	"office": Noun, "time": Noun, "service": Noun, "quality": Noun,
	"button": Noun, "speaker": Noun, "charger": Noun, "keyboard": Noun,
	"design": Noun, "size": Noun, "weight": Noun, "color": Noun,
	"sound": Noun, "storage": Noun, "memory": Noun, "processor": Noun,
	"software": Noun, "hardware": Noun, "warranty": Noun,
	"shipping": Noun, "delivery": Noun, "insurance": Noun,
	"appointment": Noun, "visit": Noun, "treatment": Noun,
	"diagnosis": Noun, "surgery": Noun, "medication": Noun,
	"nurse": Noun, "receptionist": Noun, "bedside": Noun,
	"manner": Noun, "wait": Noun, "experience": Noun, "thing": Noun,
	"lot": Noun, "bit": Noun, "day": Noun, "week": Noun, "month": Noun,
	"year": Noun, "hour": Noun, "minute": Noun, "people": Noun,
	"person": Noun, "way": Noun, "value": Noun, "money": Noun,
	"resolution": Noun, "brightness": Noun, "touchscreen": Noun,
	"fingerprint": Noun, "bluetooth": Noun, "wifi": Noun,
	"signal": Noun, "reception": Noun, "interface": Noun, "app": Noun,
	"apps": Noun, "update": Noun, "system": Noun, "android": Noun,
	"life": Noun, "charging": Noun, "texting": Noun, "calling": Noun,
}

// TagWord tags a single (lowercased) token with lexicon lookup first
// and morphological suffix rules as fallback. Unknown words default to
// Noun, the most productive open class in reviews — the same default
// MetaMap-era taggers use.
func TagWord(w string) Tag {
	if w == "" {
		return Other
	}
	if t, ok := lexicon[w]; ok {
		return t
	}
	if isNumeric(w) {
		return Num
	}
	switch {
	case strings.HasSuffix(w, "ly") && len(w) > 4:
		return Adv
	case hasAnySuffix(w, "ous", "ful", "ive", "able", "ible", "ic",
		"ish", "less", "est", "ier", "iest"):
		return Adj
	case hasAnySuffix(w, "ize", "ise", "ify", "ated"):
		return Verb
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		// Gerunds in reviews are mostly verbal ("kept dropping");
		// common nominal -ing words are in the lexicon.
		return Verb
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		return Verb
	default:
		return Noun
	}
}

func isNumeric(w string) bool {
	for _, r := range w {
		if !unicode.IsDigit(r) && r != '.' && r != ',' {
			return false
		}
	}
	return true
}

func hasAnySuffix(w string, suffixes ...string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(w, s) && len(w) > len(s)+2 {
			return true
		}
	}
	return false
}

// Tagged is a token with its tag.
type Tagged struct {
	Word string
	Tag  Tag
}

// TagSentence tags a tokenized sentence, applying two context repairs
// after the word-level pass: a word directly after a determiner that
// was tagged Verb becomes Noun ("the charging ..."), and an
// Adj directly before the sentence end after a linking verb stays Adj.
func TagSentence(tokens []string) []Tagged {
	out := make([]Tagged, len(tokens))
	for i, tok := range tokens {
		out[i] = Tagged{Word: tok, Tag: TagWord(tok)}
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Tag == Det && out[i].Tag == Verb {
			out[i].Tag = Noun
		}
	}
	return out
}
