package coverage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osars/internal/model"
)

func TestBuildPairsQuantizedShrinksDuplicates(t *testing.T) {
	o, ids := phoneOntology(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	P := []model.Pair{
		{Concept: ids["screen"], Sentiment: 0.5},
		{Concept: ids["screen"], Sentiment: 0.5},
		{Concept: ids["screen"], Sentiment: 0.5},
		{Concept: ids["battery"], Sentiment: -0.5},
	}
	g, rep := BuildPairsQuantized(m, P, 0.05)
	if len(g.Pairs) != 2 || g.NumCandidates != 2 {
		t.Fatalf("quantized graph has %d pairs, want 2", len(g.Pairs))
	}
	if g.Weight[0] != 3 || g.Weight[1] != 1 {
		t.Fatalf("weights = %v, want [3 1]", g.Weight)
	}
	if rep[0] != 0 || rep[1] != 3 {
		t.Fatalf("rep = %v, want [0 3]", rep)
	}
	// Costs must equal the multiset graph's.
	full := BuildPairs(m, P)
	if g.EmptyCost() != full.EmptyCost() {
		t.Fatalf("empty cost %v != %v", g.EmptyCost(), full.EmptyCost())
	}
	// Selecting the screen pair (unique idx 0 / multiset idx 0).
	if got, want := g.CostOf([]int{0}), full.CostOf([]int{0}); got != want {
		t.Fatalf("CostOf = %v, want %v", got, want)
	}
}

func TestBuildPairsQuantizedSnapsToGrid(t *testing.T) {
	o, ids := phoneOntology(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	P := []model.Pair{
		{Concept: ids["screen"], Sentiment: 0.4999},
		{Concept: ids["screen"], Sentiment: 0.5001},
	}
	g, _ := BuildPairsQuantized(m, P, 0.05)
	if len(g.Pairs) != 1 || g.Weight[0] != 2 {
		t.Fatalf("near-identical sentiments not merged: %d pairs, weights %v", len(g.Pairs), g.Weight)
	}
	// The representative keeps the first occurrence's exact sentiment.
	if math.Abs(g.Pairs[0].Sentiment-0.4999) > 1e-12 {
		t.Fatalf("representative sentiment = %v, want 0.4999", g.Pairs[0].Sentiment)
	}
}

func TestBuildPairsQuantizedDefaultGrid(t *testing.T) {
	o, ids := phoneOntology(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	P := []model.Pair{{Concept: ids["screen"], Sentiment: 0.5}}
	g, rep := BuildPairsQuantized(m, P, 0)
	if len(g.Pairs) != 1 || len(rep) != 1 {
		t.Fatal("default grid failed")
	}
}

// Property: for on-grid sentiments, every selection's cost on the
// quantized graph equals the corresponding multiset-graph cost.
func TestQuickQuantizedCostsMatchMultiset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, P := randomPairsInstance(rng) // sentiments already on the 0.1 grid
		full := BuildPairs(m, P)
		q, rep := BuildPairsQuantized(m, P, 0.1)
		if q.EmptyCost() != full.EmptyCost() {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			var qsel, fsel []int
			for u := range q.Pairs {
				if rng.Intn(3) == 0 {
					qsel = append(qsel, u)
					fsel = append(fsel, rep[u])
				}
			}
			if q.CostOf(qsel) != full.CostOf(fsel) {
				t.Logf("seed %d: quantized %v vs full %v", seed, q.CostOf(qsel), full.CostOf(fsel))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: plain builders always produce unit weights.
func TestQuickPlainBuildersUnitWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, P := randomPairsInstance(rng)
		for _, w := range BuildPairs(m, P).Weight {
			if w != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
