// Incremental coverage index: the §4.1 initialization kept in
// appendable form so an append-heavy corpus pays O(delta) per new
// review instead of a full rebuild per summary.
//
// Build (coverage.go) is a batch algorithm: pass 1 counting-sorts every
// candidate-pair occurrence into per-concept buckets, pass 2 scans each
// target pair's ancestor closure over those buckets. Both passes have a
// property the Index exploits: appending reviews only ever EXTENDS the
// state the passes derive —
//
//   - occurrences of new candidates land at the TAIL of their concept
//     buckets (bucket order is the global candidate scan order, and new
//     candidates scan after all old ones);
//   - existing candidates never gain occurrences (a review's pair set
//     is immutable), so the dedup/emission decisions of every old edge
//     are unchanged;
//   - the rebuilt edge row of an old target is therefore the old row
//     with the new-tail edges spliced in, ordered by the ancestor's
//     position in the target's closure row (old entries sort before new
//     ones at equal positions, because within one bucket the old
//     occurrences precede the tail).
//
// Merge applies exactly that: it appends the delta's occurrences,
// re-probes ONLY the dirty bucket tails for the affected old targets
// (found through the ontology's descendant sets, not a corpus scan),
// and runs the normal closure scan for the delta's own targets. Freeze
// hands out a row-backed Graph whose adjacency aliases the index's own
// per-row storage — O(|U| + |W|) slice-header copies, not an O(|E|)
// CSR rebuild — with the same per-row edge order as buildClosure; the
// equivalence tests fuzz row-identity against Build from scratch.
//
// The index also maintains each candidate's initial greedy gain
// Σ_w max(0, RootDist[w] − d(u,w)) as it merges, so a frozen graph
// carries the warm-start seed (Graph.InitGains) and GreedyWarm can
// skip the O(|E|) key-initialization scan.
package coverage

import (
	"sort"
	"sync"

	"osars/internal/model"
	"osars/internal/ontology"
)

// Index is the appendable form of the coverage graph for one item at
// one granularity under one metric (ontology + ε). All methods are
// safe for concurrent use; Merge serializes against Freeze, and a
// frozen Graph only aliases append-only arrays, so graphs handed out
// earlier never observe later merges.
type Index struct {
	mu     sync.Mutex
	metric model.Metric
	gran   model.Granularity

	numReviews int // reviews merged so far
	numCand    int // |U|

	// Append-only parallels of the Graph's W arrays. Frozen graphs
	// alias prefixes of these; merges only ever append past them.
	pairs    []model.Pair
	rootDist []int32
	ones     []int32 // all-ones Weight backing

	// Per-concept occurrence buckets, in global candidate scan order
	// (pass 1 of §4.1, kept live instead of rebuilt per solve).
	bucketCand [][]int32
	bucketSent [][]float64

	// targetsByConcept[c] lists the pair indices whose concept is c, so
	// a merge finds the old targets affected by a dirty concept through
	// Descendants(c) instead of scanning the whole multiset.
	targetsByConcept [][]int32

	// Per-target edge rows in buildClosure emission order
	// (ancestor-major, bucket-position-minor). edgeAnc records each
	// edge's position in the target's ancestor closure row — the sort
	// key that lets a merge splice new tail edges into an old row.
	edgeCand [][]int32
	edgeDist [][]int32
	edgeAnc  [][]int32
	numEdges int

	// Per-candidate forward rows (candidate → covered targets,
	// ascending target order — the same order as buildClosure's forward
	// CSR). Old candidates only ever gain edges to NEW targets (their
	// occurrences are immutable, so no new edge to an old target can
	// involve them), and new targets are scanned in ascending order, so
	// in-place tail appends preserve the sort. New candidates
	// additionally receive old targets out of order during the patch
	// phase; mergeLocked sorts that prefix once at the end.
	fwdPair [][]int32
	fwdDist [][]int32

	// gain[u] = Σ_w max(0, rootDist[w] − d(u,w)): the candidate's
	// initial greedy key, maintained edge by edge.
	gain []int64

	// Dedup scratch (candidate stamps per target scan, target stamps
	// per merge) and the per-merge dirty-bucket bookkeeping.
	stamp     []uint32
	gen       uint32
	tStamp    []uint32
	tGen      uint32
	dirtyFrom []int32 // pre-merge bucket length, valid while dirtyMark
	dirtyMark []bool
	dirty     []ontology.ConceptID
	pendCand  []int32 // patch scratch: pending new edges of one target
	pendDist  []int32
	pendAnc   []int32

	// Memoized Freeze: valid while no merge has run since.
	frozen        *Graph
	frozenReviews int
}

// NewIndex returns an empty index for the metric and granularity. The
// ontology is pinned: after a hot-swap the store discards the index
// (annotations change too) rather than migrating it.
func NewIndex(m model.Metric, g model.Granularity) *Index {
	n := m.Ont.Len()
	return &Index{
		metric:           m,
		gran:             g,
		bucketCand:       make([][]int32, n),
		bucketSent:       make([][]float64, n),
		targetsByConcept: make([][]int32, n),
		dirtyFrom:        make([]int32, n),
		dirtyMark:        make([]bool, n),
	}
}

// NumReviews reports how many reviews have been merged.
func (x *Index) NumReviews() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.numReviews
}

// Merge appends new reviews to the index in O(delta +
// affected-old-targets) time. Reviews must be the continuation of the
// sequence merged so far (the store's copy-on-write items guarantee
// appends preserve the prefix).
func (x *Index) Merge(reviews []model.Review) {
	if len(reviews) == 0 {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.mergeLocked(reviews)
}

// Advance merges the suffix of item's reviews the index has not seen
// yet. A stale snapshot (item shorter than the index) is a no-op, so
// concurrent advancers against different snapshots are safe.
func (x *Index) Advance(item *model.Item) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.numReviews >= len(item.Reviews) {
		return
	}
	x.mergeLocked(item.Reviews[x.numReviews:])
}

// Freeze converts the index into an immutable Graph whose rows are
// identical to Build from scratch over the merged corpus. The copy is
// O(|U| + |W|) slice headers (the rows themselves are aliased, see
// freezeLocked) and the result is memoized until the next merge.
func (x *Index) Freeze() *Graph {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.freezeLocked()
}

// Graph returns the frozen graph for the given item snapshot, catching
// the index up first if the snapshot has reviews the index has not
// merged (recovered entries, replicas applying streamed ops). It
// returns nil when the index has already merged PAST the snapshot —
// the caller's view is older than the index and only a from-scratch
// build can serve it.
func (x *Index) Graph(item *model.Item) *Graph {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := len(item.Reviews)
	if x.numReviews > n {
		return nil
	}
	if x.numReviews < n {
		x.mergeLocked(item.Reviews[x.numReviews:])
	}
	return x.freezeLocked()
}

// nextGenLocked advances the candidate-stamp generation (wrap-safe).
func (x *Index) nextGenLocked() uint32 {
	x.gen++
	if x.gen == 0 {
		for i := range x.stamp {
			x.stamp[i] = 0
		}
		x.gen = 1
	}
	return x.gen
}

// nextTargetGenLocked advances the target-stamp generation.
func (x *Index) nextTargetGenLocked() uint32 {
	x.tGen++
	if x.tGen == 0 {
		for i := range x.tStamp {
			x.tStamp[i] = 0
		}
		x.tGen = 1
	}
	return x.tGen
}

// addOccurrenceLocked files one candidate-pair occurrence: the W-side
// append-only arrays, the target row placeholder, the concept bucket
// tail and the dirty bookkeeping.
func (x *Index) addOccurrenceLocked(u int, p model.Pair) {
	ont := x.metric.Ont
	w := len(x.pairs)
	x.pairs = append(x.pairs, p)
	x.rootDist = append(x.rootDist, int32(ont.Depth(p.Concept)))
	x.ones = append(x.ones, 1)
	x.targetsByConcept[p.Concept] = append(x.targetsByConcept[p.Concept], int32(w))
	x.edgeCand = append(x.edgeCand, nil)
	x.edgeDist = append(x.edgeDist, nil)
	x.edgeAnc = append(x.edgeAnc, nil)
	if !x.dirtyMark[p.Concept] {
		x.dirtyMark[p.Concept] = true
		x.dirtyFrom[p.Concept] = int32(len(x.bucketCand[p.Concept]))
		x.dirty = append(x.dirty, p.Concept)
	}
	x.bucketCand[p.Concept] = append(x.bucketCand[p.Concept], int32(u))
	x.bucketSent[p.Concept] = append(x.bucketSent[p.Concept], p.Sentiment)
}

// mergeLocked is the three-phase merge: (A) append the delta's
// candidates and occurrences, (B) splice the dirty bucket tails into
// the affected OLD targets' rows, (C) run the full closure scan for
// the delta's NEW targets. Phase order mirrors the batch builder's two
// passes: all occurrences land before any target scans.
func (x *Index) mergeLocked(reviews []model.Review) {
	ont := x.metric.Ont
	oldPairs := len(x.pairs)
	oldCand := x.numCand

	// Phase A: extend U and the buckets in the same scan order the
	// batch builder's counting sort produces (candidates ascending,
	// pairs within a group in order).
	switch x.gran {
	case model.GranularityPairs:
		for ri := range reviews {
			for si := range reviews[ri].Sentences {
				for _, p := range reviews[ri].Sentences[si].Pairs {
					u := x.numCand
					x.numCand++
					x.addOccurrenceLocked(u, p)
				}
			}
		}
	case model.GranularitySentences:
		for ri := range reviews {
			for si := range reviews[ri].Sentences {
				u := x.numCand
				x.numCand++
				for _, p := range reviews[ri].Sentences[si].Pairs {
					x.addOccurrenceLocked(u, p)
				}
			}
		}
	case model.GranularityReviews:
		for ri := range reviews {
			u := x.numCand
			x.numCand++
			for si := range reviews[ri].Sentences {
				for _, p := range reviews[ri].Sentences[si].Pairs {
					x.addOccurrenceLocked(u, p)
				}
			}
		}
	}
	for len(x.gain) < x.numCand {
		x.gain = append(x.gain, 0)
	}
	for len(x.fwdPair) < x.numCand {
		x.fwdPair = append(x.fwdPair, nil)
		x.fwdDist = append(x.fwdDist, nil)
	}
	if cap(x.stamp) < x.numCand {
		grown := make([]uint32, x.numCand)
		copy(grown, x.stamp)
		x.stamp = grown
	}
	x.stamp = x.stamp[:x.numCand]
	if cap(x.tStamp) < len(x.pairs) {
		grown := make([]uint32, len(x.pairs))
		copy(grown, x.tStamp)
		x.tStamp = grown
	}
	x.tStamp = x.tStamp[:len(x.pairs)]

	// Phase B: every old target whose concept descends from a dirty
	// concept may gain edges from that bucket's tail. Descendant sets
	// bound the work by the delta's concepts, not the corpus size.
	tgen := x.nextTargetGenLocked()
	for _, c := range x.dirty {
		for _, dc := range ont.Descendants(c) {
			for _, t := range x.targetsByConcept[dc] {
				if int(t) >= oldPairs || x.tStamp[t] == tgen {
					continue
				}
				x.tStamp[t] = tgen
				x.patchTargetLocked(int(t))
			}
		}
	}

	// Phase C: the delta's own targets scan the now-complete buckets
	// exactly like the batch builder's second pass.
	for w := oldPairs; w < len(x.pairs); w++ {
		x.scanNewTargetLocked(w)
	}

	// New candidates received their OLD-target edges during phase B in
	// dirty-concept order, not target order; restore the ascending-target
	// invariant by sorting that prefix (everything < oldPairs — phase C's
	// new targets arrived after it, already ascending). Old candidates
	// only gained ascending new targets and need nothing.
	for u := oldCand; u < x.numCand; u++ {
		row := x.fwdPair[u]
		split := 0
		for split < len(row) && row[split] < int32(oldPairs) {
			split++
		}
		if split > 1 {
			sort.Sort(fwdRowSorter{p: row[:split], d: x.fwdDist[u][:split]})
		}
	}

	for _, c := range x.dirty {
		x.dirtyMark[c] = false
	}
	x.dirty = x.dirty[:0]
	x.numReviews += len(reviews)
	x.frozen = nil
}

// fwdRowSorter co-sorts one forward row prefix by target index.
type fwdRowSorter struct {
	p, d []int32
}

func (s fwdRowSorter) Len() int           { return len(s.p) }
func (s fwdRowSorter) Less(i, j int) bool { return s.p[i] < s.p[j] }
func (s fwdRowSorter) Swap(i, j int) {
	s.p[i], s.p[j] = s.p[j], s.p[i]
	s.d[i], s.d[j] = s.d[j], s.d[i]
}

// patchTargetLocked re-probes only the dirty bucket TAILS for one old
// target and splices any new edges into its row by ancestor position.
// Old candidates never appear in a tail, so the old row's dedup
// decisions stand; new candidates dedup among themselves in the same
// ancestor-major order the batch scan uses.
func (x *Index) patchTargetLocked(w int) {
	ont := x.metric.Ont
	root := ont.Root()
	eps := x.metric.Epsilon
	target := &x.pairs[w]
	gen := x.nextGenLocked()
	ids, dists := ont.Ancestors(target.Concept)
	pc, pd, pa := x.pendCand[:0], x.pendDist[:0], x.pendAnc[:0]
	for ai, anc := range ids {
		if !x.dirtyMark[anc] {
			continue
		}
		isRoot := anc == root
		d := dists[ai]
		bc := x.bucketCand[anc]
		bs := x.bucketSent[anc]
		for bi := int(x.dirtyFrom[anc]); bi < len(bc); bi++ {
			cand := bc[bi]
			if x.stamp[cand] == gen {
				continue
			}
			if !isRoot {
				diff := bs[bi] - target.Sentiment
				if diff < 0 {
					diff = -diff
				}
				if diff > eps {
					continue
				}
			}
			x.stamp[cand] = gen
			pc = append(pc, cand)
			pd = append(pd, d)
			pa = append(pa, int32(ai))
		}
	}
	x.pendCand, x.pendDist, x.pendAnc = pc, pd, pa
	if len(pc) == 0 {
		return
	}

	// Stable splice by ancestor position, old edges first at equal
	// positions (their bucket occurrences precede the tail). Fresh row
	// allocation keeps previously frozen graphs' rows untouched.
	oc, od, oa := x.edgeCand[w], x.edgeDist[w], x.edgeAnc[w]
	nc := make([]int32, 0, len(oc)+len(pc))
	nd := make([]int32, 0, len(oc)+len(pc))
	na := make([]int32, 0, len(oc)+len(pc))
	i, j := 0, 0
	for i < len(oc) && j < len(pc) {
		if oa[i] <= pa[j] {
			nc, nd, na = append(nc, oc[i]), append(nd, od[i]), append(na, oa[i])
			i++
		} else {
			nc, nd, na = append(nc, pc[j]), append(nd, pd[j]), append(na, pa[j])
			j++
		}
	}
	nc = append(append(nc, oc[i:]...), pc[j:]...)
	nd = append(append(nd, od[i:]...), pd[j:]...)
	na = append(append(na, oa[i:]...), pa[j:]...)
	x.edgeCand[w], x.edgeDist[w], x.edgeAnc[w] = nc, nd, na
	x.numEdges += len(pc)
	rd := x.rootDist[w]
	for j := range pc {
		x.fwdPair[pc[j]] = append(x.fwdPair[pc[j]], int32(w))
		x.fwdDist[pc[j]] = append(x.fwdDist[pc[j]], pd[j])
		if diff := rd - pd[j]; diff > 0 {
			x.gain[pc[j]] += int64(diff)
		}
	}
}

// scanNewTargetLocked runs the batch builder's per-target closure scan
// for one of the delta's pairs, over the full (old + tail) buckets.
func (x *Index) scanNewTargetLocked(w int) {
	ont := x.metric.Ont
	root := ont.Root()
	eps := x.metric.Epsilon
	target := &x.pairs[w]
	gen := x.nextGenLocked()
	ids, dists := ont.Ancestors(target.Concept)
	var ec, ed, ea []int32
	rd := x.rootDist[w]
	for ai, anc := range ids {
		isRoot := anc == root
		d := dists[ai]
		bc := x.bucketCand[anc]
		bs := x.bucketSent[anc]
		for bi := range bc {
			cand := bc[bi]
			if x.stamp[cand] == gen {
				continue
			}
			if !isRoot {
				diff := bs[bi] - target.Sentiment
				if diff < 0 {
					diff = -diff
				}
				if diff > eps {
					continue
				}
			}
			x.stamp[cand] = gen
			ec = append(ec, cand)
			ed = append(ed, d)
			ea = append(ea, int32(ai))
			x.fwdPair[cand] = append(x.fwdPair[cand], int32(w))
			x.fwdDist[cand] = append(x.fwdDist[cand], d)
			if diff := rd - d; diff > 0 {
				x.gain[cand] += int64(diff)
			}
		}
	}
	x.edgeCand[w], x.edgeDist[w], x.edgeAnc[w] = ec, ed, ea
	x.numEdges += len(ec)
}

// freezeLocked materializes a row-backed Graph in O(|U| + |W|): both
// adjacency directions hand out per-row slice headers over the index's
// storage instead of rebuilding a CSR over every edge. Aliasing is
// safe because merges never mutate a row a frozen graph can see:
//
//   - backward rows are never appended in place (patchTargetLocked
//     allocates a fresh spliced row and swaps the OUTER slice element),
//     so the outer slices are copied per freeze and the inner rows
//     shared;
//   - forward rows ARE appended in place, so each frozen alias is
//     capacity-capped — an in-cap append by a later merge lands beyond
//     the frozen length, an over-cap append reallocates.
//
// Row contents and order match buildClosure's CSR exactly (backward:
// ancestor-major emission order; forward: ascending target), which the
// equivalence tests fuzz via the accessor-level row comparison.
func (x *Index) freezeLocked() *Graph {
	if x.frozen != nil {
		return x.frozen
	}
	np := len(x.pairs)
	nc := x.numCand
	g := &Graph{
		Metric:        x.metric,
		Pairs:         x.pairs[:np:np],
		RootDist:      x.rootDist[:np:np],
		Weight:        x.ones[:np:np],
		NumCandidates: nc,
	}
	// Build from scratch returns non-nil (empty) RootDist/Weight even
	// for a pairless corpus; match that shape exactly.
	if g.RootDist == nil {
		g.RootDist = make([]int32, 0)
	}
	if g.Weight == nil {
		g.Weight = make([]int32, 0)
	}

	g.rowBacked = true
	g.rowEdges = x.numEdges
	g.rowBwdCand = make([][]int32, np)
	copy(g.rowBwdCand, x.edgeCand)
	g.rowBwdDist = make([][]int32, np)
	copy(g.rowBwdDist, x.edgeDist)
	g.rowFwdPair = make([][]int32, nc)
	g.rowFwdDist = make([][]int32, nc)
	for u := 0; u < nc; u++ {
		r := x.fwdPair[u]
		g.rowFwdPair[u] = r[:len(r):len(r)]
		d := x.fwdDist[u]
		g.rowFwdDist[u] = d[:len(d):len(d)]
	}

	g.initGains = make([]int64, nc)
	copy(g.initGains, x.gain)
	x.frozen = g
	x.frozenReviews = x.numReviews
	return g
}
