package coverage

import (
	"math/rand"
	"reflect"
	"testing"

	"osars/internal/dataset"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontology"
	"osars/internal/sentiment"
)

// graphEdges flattens a graph's forward adjacency into a comparable
// form: for every candidate, the (pair, dist) edge list in CSR order.
func graphEdges(t *testing.T, g *Graph) [][][2]int {
	t.Helper()
	out := make([][][2]int, g.NumCandidates)
	for u := 0; u < g.NumCandidates; u++ {
		pairs, dists := g.CoveredRow(u)
		for k := range pairs {
			out[u] = append(out[u], [2]int{int(pairs[k]), int(dists[k])})
		}
	}
	return out
}

// requireGraphsEqual asserts the closure-built and walker-built graphs
// are identical: same candidates, pairs, weights, edges and distances.
func requireGraphsEqual(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if got.NumCandidates != want.NumCandidates {
		t.Fatalf("%s: NumCandidates = %d, want %d", label, got.NumCandidates, want.NumCandidates)
	}
	if !reflect.DeepEqual(got.Pairs, want.Pairs) {
		t.Fatalf("%s: Pairs differ", label)
	}
	if !reflect.DeepEqual(got.Weight, want.Weight) {
		t.Fatalf("%s: Weight differs:\n got %v\nwant %v", label, got.Weight, want.Weight)
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: NumEdges = %d, want %d", label, got.NumEdges(), want.NumEdges())
	}
	ge, we := graphEdges(t, got), graphEdges(t, want)
	if !reflect.DeepEqual(ge, we) {
		t.Fatalf("%s: forward edges differ:\n got %v\nwant %v", label, ge, we)
	}
	// Backward CSR must mirror the same edge set.
	for w := range got.Pairs {
		gc, gd := got.CoverersRow(w)
		wc, wd := want.CoverersRow(w)
		if !reflect.DeepEqual(gc, wc) || !reflect.DeepEqual(gd, wd) {
			t.Fatalf("%s: coverers of pair %d differ", label, w)
		}
	}
	// And both must price an identical selection identically. (An empty
	// candidate set — e.g. a zero-review prefix in the incremental-index
	// fuzz — has no selection to price.)
	if got.NumCandidates > 0 {
		sel := []int{0}
		if got.NumCandidates > 2 {
			sel = append(sel, got.NumCandidates-1)
		}
		if g, w := got.CostOf(sel), want.CostOf(sel); g != w {
			t.Fatalf("%s: CostOf(%v) = %v, want %v", label, sel, g, w)
		}
	}
}

// diamondOntology is a multi-parent DAG: "oled" has two parents that
// are themselves siblings, so its ancestor set has two distinct paths
// to the root and the closure's shortest-distance dedup is exercised.
//
//	device ─┬─ screen ──┬─ oled
//	        ├─ display ─┘   │
//	        └─ panel ───────┘  (panel → oled too: 3 parents total)
func diamondOntology(t testing.TB) (*ontology.Ontology, map[string]ontology.ConceptID) {
	t.Helper()
	var b ontology.Builder
	ids := map[string]ontology.ConceptID{}
	ids["device"] = b.AddConcept("device")
	ids["screen"] = b.Child(ids["device"], "screen")
	ids["display"] = b.Child(ids["device"], "display")
	ids["panel"] = b.Child(ids["device"], "panel")
	ids["oled"] = b.Child(ids["screen"], "oled")
	if err := b.AddEdge(ids["display"], ids["oled"]); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(ids["panel"], ids["oled"]); err != nil {
		t.Fatal(err)
	}
	ids["burnin"] = b.Child(ids["oled"], "burn-in")
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return o, ids
}

// TestClosureBuilderMatchesWalkerMultiParent pins the closure-based
// builder against the AncestorWalker reference on a DAG where concepts
// have several parents and therefore several root paths.
func TestClosureBuilderMatchesWalkerMultiParent(t *testing.T) {
	o, ids := diamondOntology(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	P := []model.Pair{
		{Concept: ids["oled"], Sentiment: 0.9},
		{Concept: ids["burnin"], Sentiment: 0.8},
		{Concept: ids["screen"], Sentiment: 0.7},
		{Concept: ids["panel"], Sentiment: -0.9},
		{Concept: ids["burnin"], Sentiment: -0.7},
		{Concept: ids["device"], Sentiment: 0.6},
	}
	requireGraphsEqual(t, BuildPairs(m, P), BuildPairsWalker(m, P), "pairs/diamond")

	groups := [][]model.Pair{P[:2], P[2:4], P[4:]}
	requireGraphsEqual(t, BuildGroups(m, groups, P), BuildGroupsWalker(m, groups, P), "groups/diamond")
}

// TestClosureBuilderMatchesWalkerGranularities checks closure/walker
// equality on a realistic generated corpus at all three granularities.
func TestClosureBuilderMatchesWalkerGranularities(t *testing.T) {
	cfg := dataset.DoctorConfig(7)
	cfg.NumItems = 2
	cfg.TotalReviews = 40
	cfg.MinReviews = 15
	cfg.MaxReviews = 25
	c := dataset.Generate(cfg)
	pipe := extract.NewPipeline(extract.NewMatcher(c.Ont), sentiment.Lexicon{})
	m := model.Metric{Ont: c.Ont, Epsilon: 0.5}
	for _, it := range c.Items {
		var raws []extract.RawReview
		for _, r := range it.Reviews {
			raws = append(raws, extract.RawReview{ID: r.ID, Text: r.Text, Rating: r.Rating})
		}
		item := pipe.AnnotateItem(it.ID, it.Name, raws)
		for _, g := range []model.Granularity{
			model.GranularityPairs, model.GranularitySentences, model.GranularityReviews,
		} {
			got := Build(m, item, g)
			var want *Graph
			switch g {
			case model.GranularityPairs:
				want = BuildPairsWalker(m, item.Pairs())
			case model.GranularitySentences:
				groups, pairs := SentenceGroups(item)
				want = BuildGroupsWalker(m, groups, pairs)
			case model.GranularityReviews:
				groups, pairs := ReviewGroups(item)
				want = BuildGroupsWalker(m, groups, pairs)
			}
			requireGraphsEqual(t, got, want, it.ID+"/"+g.String())
		}
	}
}

// TestClosureBuilderMatchesWalkerRandom fuzzes random pair sets on the
// diamond DAG across epsilons, including ε values that put same-concept
// pairs in and out of each other's coverage.
func TestClosureBuilderMatchesWalkerRandom(t *testing.T) {
	o, ids := diamondOntology(t)
	concepts := make([]ontology.ConceptID, 0, len(ids))
	for _, id := range ids {
		concepts = append(concepts, id)
	}
	rng := rand.New(rand.NewSource(42))
	for _, eps := range []float64{0.1, 0.5, 1.0} {
		m := model.Metric{Ont: o, Epsilon: eps}
		for trial := 0; trial < 25; trial++ {
			n := 1 + rng.Intn(12)
			P := make([]model.Pair, n)
			for i := range P {
				P[i] = model.Pair{
					Concept:   concepts[rng.Intn(len(concepts))],
					Sentiment: float64(rng.Intn(21)-10) / 10,
				}
			}
			requireGraphsEqual(t, BuildPairs(m, P), BuildPairsWalker(m, P), "random")
		}
	}
}
