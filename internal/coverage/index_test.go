package coverage

import (
	"fmt"
	"math/rand"
	"testing"

	"osars/internal/model"
	"osars/internal/ontology"
)

// randomDAG builds a random multi-parent ontology: n concepts under a
// root, each with one random parent among the earlier concepts plus a
// few extra random edges (earlier → later keeps it acyclic).
func randomDAG(t testing.TB, rng *rand.Rand, n int) *ontology.Ontology {
	t.Helper()
	var b ontology.Builder
	ids := make([]ontology.ConceptID, 0, n+1)
	ids = append(ids, b.AddConcept("root"))
	for i := 0; i < n; i++ {
		parent := ids[rng.Intn(len(ids))]
		ids = append(ids, b.Child(parent, fmt.Sprintf("c%d", i)))
	}
	extra := rng.Intn(n + 1)
	for i := 0; i < extra; i++ {
		pi := rng.Intn(len(ids) - 1)
		ci := pi + 1 + rng.Intn(len(ids)-pi-1)
		// Duplicate edges are rejected by the builder; skip them.
		_ = b.AddEdge(ids[pi], ids[ci])
	}
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// randomItem generates reviews over the ontology's concepts with
// quantized sentiments, so the ε boundary is exercised exactly.
func randomItem(rng *rand.Rand, o *ontology.Ontology, numReviews int) *model.Item {
	item := &model.Item{ID: "fuzz", Name: "fuzz"}
	for ri := 0; ri < numReviews; ri++ {
		r := model.Review{ID: fmt.Sprintf("r%d", ri)}
		for si := 0; si < rng.Intn(4); si++ {
			s := model.Sentence{Text: fmt.Sprintf("s%d/%d", ri, si)}
			for pi := 0; pi < rng.Intn(4); pi++ {
				s.Pairs = append(s.Pairs, model.Pair{
					Concept:   ontology.ConceptID(rng.Intn(o.Len())),
					Sentiment: float64(rng.Intn(21)-10) / 10,
				})
			}
			r.Sentences = append(r.Sentences, s)
		}
		item.Reviews = append(item.Reviews, r)
	}
	return item
}

var allGranularities = []model.Granularity{
	model.GranularityPairs, model.GranularitySentences, model.GranularityReviews,
}

// requireInitGains asserts the index-maintained warm-start seed equals
// the initial greedy gains computed from the graph.
func requireInitGains(t *testing.T, g *Graph, label string) {
	t.Helper()
	gains := g.InitGains()
	if gains == nil {
		t.Fatalf("%s: frozen graph has no InitGains", label)
	}
	if len(gains) != g.NumCandidates {
		t.Fatalf("%s: InitGains len = %d, want %d", label, len(gains), g.NumCandidates)
	}
	for u := 0; u < g.NumCandidates; u++ {
		want := int64(0)
		pairs, dists := g.CoveredRow(u)
		for i, w := range pairs {
			if diff := g.RootDist[w] - dists[i]; diff > 0 {
				want += int64(diff)
			}
		}
		if gains[u] != want {
			t.Fatalf("%s: InitGains[%d] = %d, want %d", label, u, gains[u], want)
		}
	}
}

// requireIndexMatchesBuild merges the item into a fresh index along
// the given append schedule, comparing every intermediate Freeze to a
// from-scratch Build of the same prefix.
func requireIndexMatchesBuild(t *testing.T, m model.Metric, item *model.Item, schedule []int, label string) {
	t.Helper()
	for _, g := range allGranularities {
		idx := NewIndex(m, g)
		done := 0
		for step, chunk := range schedule {
			idx.Merge(item.Reviews[done : done+chunk])
			done += chunk
			prefix := &model.Item{ID: item.ID, Name: item.Name, Reviews: item.Reviews[:done]}
			got := idx.Freeze()
			want := Build(m, prefix, g)
			lbl := fmt.Sprintf("%s/%v/step%d(+%d)", label, g, step, chunk)
			requireGraphsEqual(t, got, want, lbl)
			requireInitGains(t, got, lbl)
			if again := idx.Freeze(); again != got {
				t.Fatalf("%s: Freeze not memoized between merges", lbl)
			}
		}
	}
}

// randomSchedule partitions n reviews into random append chunk sizes
// (zero-length chunks included: empty merges must be no-ops).
func randomSchedule(rng *rand.Rand, n int) []int {
	var out []int
	for left := n; left > 0; {
		c := rng.Intn(left + 1) // may be 0
		out = append(out, c)
		left -= c
	}
	out = append(out, 0)
	return out
}

// TestIndexMatchesBuildDiamond pins merge/freeze equivalence on the
// multi-parent diamond DAG with a one-review-at-a-time schedule — the
// store's steady-state append pattern.
func TestIndexMatchesBuildDiamond(t *testing.T) {
	o, ids := diamondOntology(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	item := &model.Item{ID: "d1", Reviews: []model.Review{
		{ID: "r0", Sentences: []model.Sentence{
			{Text: "a", Pairs: []model.Pair{{Concept: ids["oled"], Sentiment: 0.9}, {Concept: ids["screen"], Sentiment: 0.7}}},
			{Text: "b", Pairs: []model.Pair{{Concept: ids["burnin"], Sentiment: -0.7}}},
		}},
		{ID: "r1", Sentences: []model.Sentence{
			{Text: "c"}, // pairless sentence: candidate that covers nothing
			{Text: "d", Pairs: []model.Pair{{Concept: ids["panel"], Sentiment: -0.9}, {Concept: ids["device"], Sentiment: 0.6}}},
		}},
		{ID: "r2"}, // pairless review
		{ID: "r3", Sentences: []model.Sentence{
			{Text: "e", Pairs: []model.Pair{{Concept: ids["burnin"], Sentiment: 0.8}, {Concept: ids["oled"], Sentiment: -0.2}}},
		}},
	}}
	schedule := []int{1, 1, 1, 1}
	requireIndexMatchesBuild(t, m, item, schedule, "diamond")

	// One-shot merge must equal the same corpus merged review by review.
	for _, g := range allGranularities {
		idx := NewIndex(m, g)
		idx.Merge(item.Reviews)
		requireGraphsEqual(t, idx.Freeze(), Build(m, item, g), "diamond/oneshot/"+g.String())
	}
}

// TestIndexMatchesBuildFuzz fuzzes merge/freeze byte-equivalence
// against from-scratch builds: random DAGs, random corpora, random
// append schedules, all granularities, several epsilons.
func TestIndexMatchesBuildFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1138))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		o := randomDAG(t, rng, 3+rng.Intn(15))
		eps := []float64{0.1, 0.3, 1.0}[rng.Intn(3)]
		m := model.Metric{Ont: o, Epsilon: eps}
		item := randomItem(rng, o, 1+rng.Intn(12))
		schedule := randomSchedule(rng, len(item.Reviews))
		requireIndexMatchesBuild(t, m, item, schedule,
			fmt.Sprintf("fuzz%d(eps=%.1f)", trial, eps))
	}
}

// TestIndexGraphCatchUp covers the lazy-rebuild contract of
// Index.Graph: a behind index catches up to the snapshot, an ahead
// index refuses (nil) so the caller falls back to a cold build.
func TestIndexGraphCatchUp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	o := randomDAG(t, rng, 8)
	m := model.Metric{Ont: o, Epsilon: 0.3}
	item := randomItem(rng, o, 6)

	idx := NewIndex(m, model.GranularitySentences)
	idx.Merge(item.Reviews[:2])
	// Catch-up from 2 to 6 reviews happens inside Graph.
	got := idx.Graph(item)
	if got == nil {
		t.Fatal("Graph returned nil for a behind index")
	}
	requireGraphsEqual(t, got, Build(m, item, model.GranularitySentences), "catch-up")
	if idx.NumReviews() != len(item.Reviews) {
		t.Fatalf("NumReviews = %d after catch-up, want %d", idx.NumReviews(), len(item.Reviews))
	}

	// A snapshot OLDER than the index cannot be served incrementally.
	stale := &model.Item{ID: item.ID, Reviews: item.Reviews[:3]}
	if g := idx.Graph(stale); g != nil {
		t.Fatal("Graph served a snapshot older than the index")
	}
}

// TestIndexFrozenGraphsImmutable checks that a frozen graph's rows are
// not mutated by later merges (readers may hold graphs across appends).
func TestIndexFrozenGraphsImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	o := randomDAG(t, rng, 10)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	item := randomItem(rng, o, 8)

	idx := NewIndex(m, model.GranularityReviews)
	idx.Merge(item.Reviews[:4])
	snap := idx.Freeze()
	before := graphEdges(t, snap)
	costBefore := snap.CostOf([]int{0})

	idx.Merge(item.Reviews[4:])
	idx.Freeze()

	if got := graphEdges(t, snap); fmt.Sprint(got) != fmt.Sprint(before) {
		t.Fatal("frozen graph edges changed after a later merge")
	}
	if got := snap.CostOf([]int{0}); got != costBefore {
		t.Fatalf("frozen graph CostOf changed after a later merge: %v → %v", costBefore, got)
	}
}
