package coverage

import (
	"math"

	"osars/internal/model"
	"osars/internal/ontology"
)

// BuildPairsQuantized is an optimized variant of BuildPairs for the
// k-Pairs problem: sentiments are snapped to a grid (e.g. 0.05) and
// identical (concept, quantized sentiment) pairs are merged into one
// weighted pair. On review corpora — where popular concepts repeat
// with near-identical sentiments — this shrinks |U|, |W| and |E|
// substantially while changing costs only by the quantization error
// (zero when sentiments already live on the grid, as the graded
// opinion-lexicon estimates do).
//
// rep[w] is the index in the original multiset of the first pair the
// unique pair w stands for, so a selection over the quantized graph
// translates back to original pairs.
func BuildPairsQuantized(m model.Metric, pairs []model.Pair, grid float64) (g *Graph, rep []int) {
	if grid <= 0 {
		grid = 0.05
	}
	type key struct {
		c ontology.ConceptID
		q int64
	}
	index := make(map[key]int, len(pairs))
	var unique []model.Pair
	var weight []int32
	for i, p := range pairs {
		q := int64(math.Round(p.Sentiment / grid))
		k := key{p.Concept, q}
		if at, ok := index[k]; ok {
			weight[at]++
			continue
		}
		index[k] = len(unique)
		// The representative keeps the first occurrence's exact
		// sentiment (not q·grid), so pairs that were already identical
		// merge without perturbing any Definition-1 ε comparison.
		unique = append(unique, p)
		weight = append(weight, 1)
		rep = append(rep, i)
	}
	groups := make([][]model.Pair, len(unique))
	for i := range unique {
		groups[i] = unique[i : i+1]
	}
	return buildClosure(m, groups, unique, weight), rep
}
