package coverage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osars/internal/model"
	"osars/internal/ontology"
)

// phoneOntology builds a small hierarchy:
//
//	phone ── screen ── resolution
//	   │  └─ battery
//	   └─ price
func phoneOntology(t testing.TB) (*ontology.Ontology, map[string]ontology.ConceptID) {
	t.Helper()
	var b ontology.Builder
	ids := map[string]ontology.ConceptID{}
	ids["phone"] = b.AddConcept("phone")
	ids["screen"] = b.Child(ids["phone"], "screen")
	ids["resolution"] = b.Child(ids["screen"], "resolution")
	ids["battery"] = b.Child(ids["phone"], "battery")
	ids["price"] = b.Child(ids["phone"], "price")
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return o, ids
}

func TestBuildPairsEdges(t *testing.T) {
	o, ids := phoneOntology(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	P := []model.Pair{
		{Concept: ids["screen"], Sentiment: 0.8},     // 0
		{Concept: ids["resolution"], Sentiment: 0.6}, // 1: covered by 0 at dist 1
		{Concept: ids["resolution"], Sentiment: -.9}, // 2: NOT covered by 0 (sentiment)
		{Concept: ids["battery"], Sentiment: 0.7},    // 3: sibling of screen
	}
	g := BuildPairs(m, P)
	if g.NumCandidates != 4 || len(g.Pairs) != 4 {
		t.Fatalf("graph size wrong: %v", g)
	}
	type key struct{ u, w int }
	got := map[key]int{}
	for u := 0; u < g.NumCandidates; u++ {
		g.Covered(u, func(w, dist int) bool {
			got[key{u, w}] = dist
			return true
		})
	}
	want := map[key]int{
		{0, 0}: 0, {0, 1}: 1, // screen covers itself and resolution(0.6)
		{1, 1}: 0,
		{2, 2}: 0,
		{3, 3}: 0,
	}
	if len(got) != len(want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	for k, d := range want {
		if got[k] != d {
			t.Errorf("edge %v dist = %d, want %d", k, got[k], d)
		}
	}
	// Root distances are concept depths.
	wantRoot := []int32{1, 2, 2, 1}
	for w, d := range wantRoot {
		if g.RootDist[w] != d {
			t.Errorf("RootDist[%d] = %d, want %d", w, g.RootDist[w], d)
		}
	}
}

func TestRootConceptPairCoversEverything(t *testing.T) {
	o, ids := phoneOntology(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	P := []model.Pair{
		{Concept: ids["phone"], Sentiment: -1},      // root concept, extreme sentiment
		{Concept: ids["resolution"], Sentiment: +1}, // far sentiment: still covered by root pair
		{Concept: ids["battery"], Sentiment: 0},
	}
	g := BuildPairs(m, P)
	covered := map[int]int{}
	g.Covered(0, func(w, dist int) bool { covered[w] = dist; return true })
	if covered[1] != 2 || covered[2] != 1 || covered[0] != 0 {
		t.Fatalf("root-concept pair coverage = %v, want {0:0 1:2 2:1}", covered)
	}
}

func TestCostOfMatchesMetricCost(t *testing.T) {
	o, ids := phoneOntology(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	P := []model.Pair{
		{Concept: ids["screen"], Sentiment: 0.8},
		{Concept: ids["resolution"], Sentiment: 0.6},
		{Concept: ids["resolution"], Sentiment: -0.9},
		{Concept: ids["battery"], Sentiment: 0.7},
		{Concept: ids["price"], Sentiment: -0.2},
	}
	g := BuildPairs(m, P)
	for _, sel := range [][]int{{}, {0}, {0, 3}, {1, 2, 4}, {0, 1, 2, 3, 4}} {
		F := make([]model.Pair, len(sel))
		for i, u := range sel {
			F[i] = P[u]
		}
		if got, want := g.CostOf(sel), m.Cost(F, P); got != want {
			t.Errorf("CostOf(%v) = %v, metric cost %v", sel, got, want)
		}
	}
	if got, want := g.EmptyCost(), m.Cost(nil, P); got != want {
		t.Errorf("EmptyCost = %v, want %v", got, want)
	}
}

func TestBuildGroupsMinDistance(t *testing.T) {
	o, ids := phoneOntology(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	// One sentence with both a screen and a resolution pair: its edge
	// to the resolution pair must take the min distance (0, from the
	// resolution pair itself) not 1 (from the screen pair).
	groups := [][]model.Pair{
		{{Concept: ids["screen"], Sentiment: 0.8}, {Concept: ids["resolution"], Sentiment: 0.6}},
		{{Concept: ids["battery"], Sentiment: -0.5}},
	}
	var P []model.Pair
	for _, g := range groups {
		P = append(P, g...)
	}
	g := BuildGroups(m, groups, P)
	if g.NumCandidates != 2 {
		t.Fatalf("NumCandidates = %d, want 2", g.NumCandidates)
	}
	dist := map[int]int{}
	g.Covered(0, func(w, d int) bool { dist[w] = d; return true })
	if dist[0] != 0 || dist[1] != 0 {
		t.Fatalf("group 0 coverage = %v, want both at 0", dist)
	}
	// Selecting group 0 leaves only the battery pair to the root.
	if got := g.CostOf([]int{0}); got != 1 {
		t.Fatalf("CostOf([0]) = %v, want 1", got)
	}
}

func TestSentenceAndReviewGroups(t *testing.T) {
	o, ids := phoneOntology(t)
	item := &model.Item{
		Reviews: []model.Review{
			{Sentences: []model.Sentence{
				{Pairs: []model.Pair{{Concept: ids["screen"], Sentiment: 0.5}}},
				{Pairs: []model.Pair{{Concept: ids["battery"], Sentiment: -0.5}, {Concept: ids["price"], Sentiment: 0}}},
			}},
			{Sentences: []model.Sentence{
				{Pairs: nil}, // pairless sentence still a candidate
			}},
		},
	}
	sg, sp := SentenceGroups(item)
	if len(sg) != 3 || len(sp) != 3 {
		t.Fatalf("SentenceGroups = %d groups, %d pairs; want 3, 3", len(sg), len(sp))
	}
	rg, rp := ReviewGroups(item)
	if len(rg) != 2 || len(rp) != 3 {
		t.Fatalf("ReviewGroups = %d groups, %d pairs; want 2, 3", len(rg), len(rp))
	}
	m := model.Metric{Ont: o, Epsilon: 0.5}
	for _, gran := range []model.Granularity{model.GranularityPairs, model.GranularitySentences, model.GranularityReviews} {
		g := Build(m, item, gran)
		if g == nil || len(g.Pairs) != 3 {
			t.Fatalf("Build(%v) pairs = %d, want 3", gran, len(g.Pairs))
		}
	}
}

func TestCoverersIsTransposeOfCovered(t *testing.T) {
	o, ids := phoneOntology(t)
	m := model.Metric{Ont: o, Epsilon: 0.5}
	rng := rand.New(rand.NewSource(1))
	var P []model.Pair
	all := []ontology.ConceptID{ids["phone"], ids["screen"], ids["resolution"], ids["battery"], ids["price"]}
	for i := 0; i < 50; i++ {
		P = append(P, model.Pair{Concept: all[rng.Intn(len(all))], Sentiment: math.Round(rng.Float64()*20-10) / 10})
	}
	g := BuildPairs(m, P)
	type key struct{ u, w int }
	fwd := map[key]int{}
	for u := 0; u < g.NumCandidates; u++ {
		g.Covered(u, func(w, d int) bool { fwd[key{u, w}] = d; return true })
	}
	bwd := map[key]int{}
	for w := range g.Pairs {
		g.Coverers(w, func(u, d int) bool { bwd[key{u, w}] = d; return true })
	}
	if len(fwd) != len(bwd) || len(fwd) != g.NumEdges() {
		t.Fatalf("edge counts differ: fwd %d bwd %d NumEdges %d", len(fwd), len(bwd), g.NumEdges())
	}
	for k, d := range fwd {
		if bwd[k] != d {
			t.Fatalf("edge %v: fwd %d bwd %d", k, d, bwd[k])
		}
	}
}

// randomPairsInstance builds a random DAG and pair multiset for
// property tests.
func randomPairsInstance(rng *rand.Rand) (model.Metric, []model.Pair) {
	var b ontology.Builder
	n := 2 + rng.Intn(25)
	ids := make([]ontology.ConceptID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddConcept("c" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		if i > 0 {
			b.AddEdge(ids[rng.Intn(i)], ids[i])
			if i >= 2 && rng.Intn(4) == 0 {
				b.AddEdge(ids[rng.Intn(i)], ids[i])
			}
		}
	}
	o, err := b.Build()
	if err != nil {
		panic(err)
	}
	P := make([]model.Pair, 1+rng.Intn(40))
	for i := range P {
		P[i] = model.Pair{Concept: ids[rng.Intn(n)], Sentiment: math.Round(rng.Float64()*20-10) / 10}
	}
	return model.Metric{Ont: o, Epsilon: 0.5}, P
}

// Property: the bucket+walk builder produces exactly the same edge set
// (with the same minimum weights) as the naive all-pairs builder.
func TestQuickBuildMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, P := randomPairsInstance(rng)
		fast := BuildPairs(m, P)
		naive := BuildPairsNaive(m, P)
		if fast.NumEdges() != naive.NumEdges() {
			t.Logf("edge count %d vs %d", fast.NumEdges(), naive.NumEdges())
			return false
		}
		type key struct{ u, w int }
		collect := func(g *Graph) map[key]int {
			out := map[key]int{}
			for u := 0; u < g.NumCandidates; u++ {
				g.Covered(u, func(w, d int) bool { out[key{u, w}] = d; return true })
			}
			return out
		}
		a, b := collect(fast), collect(naive)
		for k, d := range a {
			if b[k] != d {
				t.Logf("edge %v: fast %d naive %d", k, d, b[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: CostOf on random selections agrees with the reference
// Metric.Cost.
func TestQuickCostOfMatchesMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, P := randomPairsInstance(rng)
		g := BuildPairs(m, P)
		for trial := 0; trial < 5; trial++ {
			var sel []int
			var F []model.Pair
			for u := range P {
				if rng.Intn(3) == 0 {
					sel = append(sel, u)
					F = append(F, P[u])
				}
			}
			if g.CostOf(sel) != m.Cost(F, P) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: group cost via graph equals the reference GroupCost.
func TestQuickGroupCostMatchesMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, P := randomPairsInstance(rng)
		// Partition P into random contiguous groups.
		var groups [][]model.Pair
		for i := 0; i < len(P); {
			j := i + 1 + rng.Intn(3)
			if j > len(P) {
				j = len(P)
			}
			groups = append(groups, P[i:j])
			i = j
		}
		g := BuildGroups(m, groups, P)
		for trial := 0; trial < 5; trial++ {
			var sel []int
			var chosen [][]model.Pair
			for u := range groups {
				if rng.Intn(3) == 0 {
					sel = append(sel, u)
					chosen = append(chosen, groups[u])
				}
			}
			if g.CostOf(sel) != m.GroupCost(chosen, P) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
