// Package coverage implements the initialization phase shared by all
// three summarization algorithms (paper §4.1), producing the
// edge-weighted bipartite coverage graph G = (U, W, E).
//
// W is always the multiset P of concept-sentiment pairs to be covered.
// U is the candidate set: the pairs themselves for k-Pairs Coverage, or
// the sentences / whole reviews for k-Reviews/Sentences Coverage
// (§4.5). An edge (u, w) with weight d means candidate u covers pair w
// at Definition-1 distance d.
//
// The graph is built exactly as the paper describes: a first pass
// buckets candidate pairs by concept; a second pass iterates, for each
// target pair, the ancestors of its concept in the DAG and probes the
// buckets. (The paper walks ancestors by DFS; we use BFS order, which
// visits the same ancestor set but yields shortest up-distances
// directly — DFS would need explicit minimum tracking on multi-parent
// DAGs.) Because the average number of ancestors per concept is small,
// construction is near-linear in |P|.
//
// The production builder consumes the ontology's precomputed ancestor
// closure (ontology.Ancestors) instead of re-running a BFS per target
// pair, stores the concept buckets as one counting-sorted CSR block
// indexed by ConceptID instead of a map of append-lists, and fills the
// dual CSR adjacency in two exact-size passes with no per-target
// intermediate lists. All transient build state is recycled through a
// sync.Pool for server workloads. The original walker-based builder is
// kept (BuildGroupsWalker / BuildPairsWalker) as the ablation
// reference; the equivalence tests assert the two produce identical
// graphs.
package coverage

import (
	"fmt"
	"sort"
	"sync"

	"osars/internal/model"
	"osars/internal/ontology"
)

// Graph is the immutable coverage graph. Adjacency is stored in
// compressed sparse rows in both directions:
//
//   - forward:  candidate u → (pair w, distance)
//   - backward: pair w → (candidate u, distance)
//
// plus the per-pair root fallback distance (the depth of the pair's
// concept), so C(F, P) is computable from the graph alone.
type Graph struct {
	Metric model.Metric
	// Pairs is W: the multiset of pairs to cover, in input order.
	Pairs []model.Pair
	// RootDist[w] is d(r, Pairs[w].Concept): the cost of leaving pair
	// w to the implicit root.
	RootDist []int32
	// Weight[w] is the multiplicity of pair w. Plain builders set every
	// weight to 1; BuildPairsQuantized merges duplicate pairs and
	// records how many originals each unique pair stands for. All cost
	// computations multiply by it.
	Weight []int32
	// NumCandidates is |U|.
	NumCandidates int

	fwdIdx  []int32 // len NumCandidates+1
	fwdPair []int32
	fwdDist []int32

	bwdIdx  []int32 // len len(Pairs)+1
	bwdCand []int32
	bwdDist []int32

	// Row-backed adjacency, the alternative representation set by the
	// incremental Index's Freeze (index.go): one slice per candidate /
	// per pair instead of the flat CSR block. Freezing then costs O(|U| +
	// |W|) slice-header copies instead of an O(|E|) array rebuild — the
	// rows alias the index's append-only storage (capacity-capped, so
	// later merges reallocate rather than write through). Row contents
	// and order are identical to the CSR rows Build produces; every
	// accessor branches on rowBacked, so the two representations are
	// indistinguishable through the API.
	rowBacked  bool
	rowEdges   int
	rowFwdPair [][]int32 // per candidate: covered pair indices, ascending
	rowFwdDist [][]int32
	rowBwdCand [][]int32 // per pair: covering candidates, closure order
	rowBwdDist [][]int32

	// initGains, when non-nil, is the warm-start seed maintained by the
	// incremental Index (index.go): initGains[u] = Σ_w max(0,
	// RootDist[w]−d(u,w)), each candidate's initial greedy key. Batch
	// builders leave it nil.
	initGains []int64
}

// InitGains returns the per-candidate initial greedy gains maintained
// by the incremental index that froze this graph, or nil for graphs
// from the batch builders. The slice is shared and must be treated as
// read-only.
func (g *Graph) InitGains() []int64 { return g.initGains }

// Edge is one coverage relation reported by the iteration methods.
type Edge struct {
	Candidate int
	Pair      int
	Dist      int
}

// NumEdges reports |E|.
func (g *Graph) NumEdges() int {
	if g.rowBacked {
		return g.rowEdges
	}
	return len(g.fwdPair)
}

// Covered calls fn for every pair covered by candidate u, with the
// Definition-1 distance. Iteration stops early if fn returns false.
func (g *Graph) Covered(u int, fn func(w int, dist int) bool) {
	pairs, dists := g.CoveredRow(u)
	for i := range pairs {
		if !fn(int(pairs[i]), int(dists[i])) {
			return
		}
	}
}

// Coverers calls fn for every candidate covering pair w, with the
// Definition-1 distance. Iteration stops early if fn returns false.
func (g *Graph) Coverers(w int, fn func(u int, dist int) bool) {
	cands, dists := g.CoverersRow(w)
	for i := range cands {
		if !fn(int(cands[i]), int(dists[i])) {
			return
		}
	}
}

// Degree returns the number of pairs candidate u covers.
func (g *Graph) Degree(u int) int {
	if g.rowBacked {
		return len(g.rowFwdPair[u])
	}
	return int(g.fwdIdx[u+1] - g.fwdIdx[u])
}

// CoveredRow returns the forward row of candidate u: the pair indices
// it covers and the matching Definition-1 distances. The slices alias
// the graph's storage and must not be modified. This is the
// allocation- and closure-free counterpart of Covered for hot loops
// (the greedy key updates walk these rows directly).
func (g *Graph) CoveredRow(u int) (pairs, dists []int32) {
	if g.rowBacked {
		return g.rowFwdPair[u], g.rowFwdDist[u]
	}
	lo, hi := g.fwdIdx[u], g.fwdIdx[u+1]
	return g.fwdPair[lo:hi], g.fwdDist[lo:hi]
}

// CoverersRow returns the backward row of pair w: the candidate
// indices covering it and the matching distances. The slices alias the
// graph's storage and must not be modified.
func (g *Graph) CoverersRow(w int) (cands, dists []int32) {
	if g.rowBacked {
		return g.rowBwdCand[w], g.rowBwdDist[w]
	}
	lo, hi := g.bwdIdx[w], g.bwdIdx[w+1]
	return g.bwdCand[lo:hi], g.bwdDist[lo:hi]
}

// CostScratch holds reusable state for CostOfWith so that repeated
// cost evaluations (randomized-rounding trials, local-search guards,
// per-request server evaluation) allocate nothing after the first
// call. The zero value is ready; a scratch may be reused across graphs
// of different sizes but is NOT safe for concurrent use.
type CostScratch struct {
	stamp []uint32
	gen   uint32
}

// mark stamps the selected candidates, growing the stamp array to
// hold n candidates, and returns the current generation.
func (s *CostScratch) mark(n int, selected []int) uint32 {
	if cap(s.stamp) < n {
		s.stamp = make([]uint32, n)
	}
	s.stamp = s.stamp[:n]
	s.gen++
	if s.gen == 0 { // wrapped: clear stale stamps
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	for _, u := range selected {
		s.stamp[u] = s.gen
	}
	return s.gen
}

// CostOf evaluates C(F, P) for a set of selected candidates using only
// the precomputed graph: each pair is charged the minimum distance over
// selected coverers, with the root as fallback.
func (g *Graph) CostOf(selected []int) float64 {
	var s CostScratch
	return g.CostOfWith(&s, selected)
}

// CostOfWith is CostOf with caller-owned scratch, for evaluation loops
// that must not allocate per call.
func (g *Graph) CostOfWith(s *CostScratch, selected []int) float64 {
	gen := s.mark(g.NumCandidates, selected)
	stamp := s.stamp
	total := 0
	for w := range g.Pairs {
		best := g.RootDist[w]
		cands, dists := g.CoverersRow(w)
		for i := range cands {
			if d := dists[i]; d < best && stamp[cands[i]] == gen {
				best = d
			}
		}
		total += int(best) * int(g.Weight[w])
	}
	return float64(total)
}

// EmptyCost returns C(∅, P) = Σ_w Weight[w]·RootDist[w], the cost of
// the empty summary where the root covers everything.
func (g *Graph) EmptyCost() float64 {
	total := 0
	for w, d := range g.RootDist {
		total += int(d) * int(g.Weight[w])
	}
	return float64(total)
}

// String describes the graph size.
func (g *Graph) String() string {
	return fmt.Sprintf("CoverageGraph(|U|=%d, |W|=%d, |E|=%d)", g.NumCandidates, len(g.Pairs), g.NumEdges())
}

// bucketEntry is one candidate-pair occurrence filed under its concept
// during the first pass.
type bucketEntry struct {
	cand      int32
	sentiment float64
}

// builder accumulates edges grouped by target pair before the CSR
// conversion.
type builder struct {
	metric  model.Metric
	pairs   []model.Pair
	weight  []int32 // nil → all ones
	numCand int
	// per-target edge lists
	edgeCand [][]int32
	edgeDist [][]int32
}

// BuildPairs constructs the coverage graph for k-Pairs Coverage:
// U = W = P, and candidate i is the pair P[i] itself.
func BuildPairs(m model.Metric, pairs []model.Pair) *Graph {
	groups := make([][]model.Pair, len(pairs))
	for i := range pairs {
		groups[i] = pairs[i : i+1]
	}
	return build(m, groups, pairs)
}

// BuildGroups constructs the coverage graph for k-Reviews/Sentences
// Coverage (§4.5): candidate u is the pair-set groups[u] (one sentence
// or one whole review), and W is the given pair multiset (normally the
// concatenation of all groups). The edge weight from a group to a pair
// is the minimum Definition-1 distance over the group's pairs.
func BuildGroups(m model.Metric, groups [][]model.Pair, pairs []model.Pair) *Graph {
	return build(m, groups, pairs)
}

// SentenceGroups flattens an item into per-sentence pair groups plus
// the full pair multiset P, ready for BuildGroups. Sentences with no
// extracted pairs are still included (they can be selected but cover
// nothing), preserving candidate indices aligned with sentence order.
func SentenceGroups(item *model.Item) (groups [][]model.Pair, pairs []model.Pair) {
	for ri := range item.Reviews {
		for si := range item.Reviews[ri].Sentences {
			s := &item.Reviews[ri].Sentences[si]
			groups = append(groups, s.Pairs)
			pairs = append(pairs, s.Pairs...)
		}
	}
	return groups, pairs
}

// ReviewGroups flattens an item into per-review pair groups plus the
// full pair multiset P, ready for BuildGroups.
func ReviewGroups(item *model.Item) (groups [][]model.Pair, pairs []model.Pair) {
	for ri := range item.Reviews {
		g := item.Reviews[ri].Pairs()
		groups = append(groups, g)
		pairs = append(pairs, g...)
	}
	return groups, pairs
}

// Build constructs the coverage graph for an item at the requested
// granularity.
func Build(m model.Metric, item *model.Item, g model.Granularity) *Graph {
	switch g {
	case model.GranularityPairs:
		return BuildPairs(m, item.Pairs())
	case model.GranularitySentences:
		groups, pairs := SentenceGroups(item)
		return BuildGroups(m, groups, pairs)
	case model.GranularityReviews:
		groups, pairs := ReviewGroups(item)
		return BuildGroups(m, groups, pairs)
	default:
		panic(fmt.Sprintf("coverage: unknown granularity %v", g))
	}
}

func build(m model.Metric, groups [][]model.Pair, pairs []model.Pair) *Graph {
	return buildClosure(m, groups, pairs, nil)
}

// buildScratch is the pooled transient state of buildClosure. Every
// slice grows monotonically and is reused across builds, so a server
// solving cache misses in a loop stops allocating build scratch after
// warm-up.
type buildScratch struct {
	bucketIdx  []int32   // len numConcepts+1: bucket CSR offsets
	bucketCand []int32   // candidate of each occurrence, grouped by concept
	bucketSent []float64 // sentiment of each occurrence
	cursor     []int32   // per-concept fill cursor / per-candidate next
	perW       []int32   // edges counted per target pair
	candCount  []int32   // edges counted per candidate (+1 shifted)
	stamp      []uint32  // per-candidate dedup stamps
	gen        uint32
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// grow32 resizes buf to n, reusing capacity.
func grow32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// nextGen advances the scratch's dedup generation, clearing stamps on
// wrap-around, and returns the fresh generation.
func (s *buildScratch) nextGen() uint32 {
	s.gen++
	if s.gen == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	return s.gen
}

// buildClosure is the production §4.1 initialization. It differs from
// the walker reference in three ways, none observable in the output:
//
//  1. the per-target ancestor BFS is replaced by a read of the
//     ontology's precomputed closure row (same ancestor set, same BFS
//     order, same shortest up-distances);
//  2. the concept buckets are a counting-sorted CSR block indexed by
//     ConceptID instead of map[ConceptID][]bucketEntry;
//  3. edges are counted in one pass and written straight into the
//     exact-size dual CSR in a second, instead of accumulating
//     per-target [][]int32 append lists that finish() re-copies.
//
// weight == nil means all multiplicities are 1.
func buildClosure(m model.Metric, groups [][]model.Pair, pairs []model.Pair, weight []int32) *Graph {
	ont := m.Ont
	numConcepts := ont.Len()
	numCand := len(groups)
	root := ont.Root()
	eps := m.Epsilon

	s := buildPool.Get().(*buildScratch)
	defer buildPool.Put(s)

	// First pass (§4.1): bucket candidate pair occurrences by concept —
	// counting sort into one CSR block.
	bucketIdx := grow32(s.bucketIdx, numConcepts+1)
	for i := range bucketIdx {
		bucketIdx[i] = 0
	}
	occ := 0
	for _, g := range groups {
		for _, p := range g {
			bucketIdx[p.Concept+1]++
			occ++
		}
	}
	for c := 1; c <= numConcepts; c++ {
		bucketIdx[c] += bucketIdx[c-1]
	}
	bucketCand := grow32(s.bucketCand, occ)
	bucketSent := growF64(s.bucketSent, occ)
	cursor := grow32(s.cursor, numConcepts)
	if numCand > numConcepts {
		cursor = grow32(cursor, numCand) // shared with the fwd fill below
	}
	copy(cursor[:numConcepts], bucketIdx[:numConcepts])
	for u, g := range groups {
		for _, p := range g {
			pos := cursor[p.Concept]
			cursor[p.Concept]++
			bucketCand[pos] = int32(u)
			bucketSent[pos] = p.Sentiment
		}
	}

	// Grow the dedup stamps once; generations handle logical clearing.
	if cap(s.stamp) < numCand {
		s.stamp = make([]uint32, numCand)
	}
	stamp := s.stamp[:numCand]

	// Second pass, count stage: for each target pair, scan its
	// concept's closure row and probe the buckets, counting edges per
	// target and per candidate. BFS order in the row gives
	// non-decreasing distances, so the first qualifying occurrence of a
	// candidate is its minimum edge weight; the stamp dedups.
	perW := grow32(s.perW, len(pairs))
	candCount := grow32(s.candCount, numCand+1)
	for i := range candCount {
		candCount[i] = 0
	}
	for w := range pairs {
		target := &pairs[w]
		gen := s.nextGen()
		ids, _ := ont.Ancestors(target.Concept)
		n := int32(0)
		for _, anc := range ids {
			isRoot := anc == root
			for bi := bucketIdx[anc]; bi < bucketIdx[anc+1]; bi++ {
				cand := bucketCand[bi]
				if stamp[cand] == gen {
					continue
				}
				if !isRoot {
					diff := bucketSent[bi] - target.Sentiment
					if diff < 0 {
						diff = -diff
					}
					if diff > eps {
						continue
					}
				}
				stamp[cand] = gen
				candCount[cand+1]++
				n++
			}
		}
		perW[w] = n
	}

	g := &Graph{
		Metric:        m,
		Pairs:         pairs,
		RootDist:      make([]int32, len(pairs)),
		Weight:        weight,
		NumCandidates: numCand,
	}
	if g.Weight == nil {
		g.Weight = make([]int32, len(pairs))
		for w := range g.Weight {
			g.Weight[w] = 1
		}
	}
	for w := range pairs {
		g.RootDist[w] = int32(ont.Depth(pairs[w].Concept))
	}

	// Exact-size dual CSR, offsets from the counts.
	g.bwdIdx = make([]int32, len(pairs)+1)
	for w := range pairs {
		g.bwdIdx[w+1] = g.bwdIdx[w] + perW[w]
	}
	total := int(g.bwdIdx[len(pairs)])
	g.bwdCand = make([]int32, total)
	g.bwdDist = make([]int32, total)
	for u := 1; u <= numCand; u++ {
		candCount[u] += candCount[u-1]
	}
	g.fwdIdx = candCount[:numCand+1]
	// fwdIdx is retained by the Graph, so it must leave the pool.
	g.fwdIdx = append([]int32(nil), g.fwdIdx...)
	g.fwdPair = make([]int32, total)
	g.fwdDist = make([]int32, total)

	// Second pass, fill stage: identical iteration (so identical dedup
	// decisions and edge order), writing both CSR directions directly.
	next := grow32(cursor, numCand) // reuse: per-candidate fwd cursor
	copy(next, g.fwdIdx[:numCand])
	bp := int32(0)
	for w := range pairs {
		target := &pairs[w]
		gen := s.nextGen()
		ids, dists := ont.Ancestors(target.Concept)
		w32 := int32(w)
		for ai, anc := range ids {
			isRoot := anc == root
			d := dists[ai]
			for bi := bucketIdx[anc]; bi < bucketIdx[anc+1]; bi++ {
				cand := bucketCand[bi]
				if stamp[cand] == gen {
					continue
				}
				if !isRoot {
					diff := bucketSent[bi] - target.Sentiment
					if diff < 0 {
						diff = -diff
					}
					if diff > eps {
						continue
					}
				}
				stamp[cand] = gen
				g.bwdCand[bp] = cand
				g.bwdDist[bp] = d
				bp++
				pos := next[cand]
				next[cand]++
				g.fwdPair[pos] = w32
				g.fwdDist[pos] = d
			}
		}
	}

	// Return the (possibly re-grown) scratch slices to the pool entry.
	s.bucketIdx = bucketIdx
	s.bucketCand = bucketCand
	s.bucketSent = bucketSent
	s.cursor = next
	s.perW = perW
	s.candCount = candCount[:0]
	return g
}

// BuildGroupsWalker is the pre-closure reference builder: per-target
// AncestorWalker BFS with map-backed buckets and per-target append
// lists. Kept for the ablation benchmark and the equivalence tests;
// production code paths use the closure-based builder.
func BuildGroupsWalker(m model.Metric, groups [][]model.Pair, pairs []model.Pair) *Graph {
	b := builder{
		metric:   m,
		pairs:    pairs,
		numCand:  len(groups),
		edgeCand: make([][]int32, len(pairs)),
		edgeDist: make([][]int32, len(pairs)),
	}
	fillEdges(&b, groups)
	return b.finish()
}

// BuildPairsWalker is BuildPairs through the walker reference builder.
func BuildPairsWalker(m model.Metric, pairs []model.Pair) *Graph {
	groups := make([][]model.Pair, len(pairs))
	for i := range pairs {
		groups[i] = pairs[i : i+1]
	}
	return BuildGroupsWalker(m, groups, pairs)
}

// fillEdges runs the two §4.1 passes, populating the per-target edge
// lists of the builder.
func fillEdges(b *builder, groups [][]model.Pair) {
	m := b.metric
	pairs := b.pairs

	// First pass (§4.1): bucket candidate pair occurrences by concept.
	buckets := make(map[ontology.ConceptID][]bucketEntry)
	for u, g := range groups {
		for _, p := range g {
			buckets[p.Concept] = append(buckets[p.Concept], bucketEntry{int32(u), p.Sentiment})
		}
	}

	// Second pass: for each target pair, walk ancestors of its concept
	// and probe buckets. BFS order gives non-decreasing distances, so
	// the first qualifying occurrence of a candidate yields its
	// minimum edge weight; a stamp array deduplicates candidates.
	root := m.Ont.Root()
	walker := ontology.NewAncestorWalker(m.Ont)
	stamp := make([]int32, len(groups))
	for i := range stamp {
		stamp[i] = -1
	}
	for w, target := range pairs {
		w32 := int32(w)
		walker.Walk(target.Concept, func(anc ontology.ConceptID, dist int) bool {
			isRoot := anc == root
			for _, e := range buckets[anc] {
				if stamp[e.cand] == w32 {
					continue
				}
				if !isRoot {
					diff := e.sentiment - target.Sentiment
					if diff < 0 {
						diff = -diff
					}
					if diff > m.Epsilon {
						continue
					}
				}
				stamp[e.cand] = w32
				b.edgeCand[w] = append(b.edgeCand[w], e.cand)
				b.edgeDist[w] = append(b.edgeDist[w], int32(dist))
			}
			return true
		})
	}
}

// finish converts the per-target edge lists into the dual CSR layout.
func (b *builder) finish() *Graph {
	g := &Graph{
		Metric:        b.metric,
		Pairs:         b.pairs,
		RootDist:      make([]int32, len(b.pairs)),
		Weight:        b.weight,
		NumCandidates: b.numCand,
	}
	if g.Weight == nil {
		g.Weight = make([]int32, len(b.pairs))
		for w := range g.Weight {
			g.Weight[w] = 1
		}
	}
	for w, p := range b.pairs {
		g.RootDist[w] = int32(b.metric.Ont.Depth(p.Concept))
	}

	total := 0
	for w := range b.edgeCand {
		total += len(b.edgeCand[w])
	}

	// Backward CSR: straight copy of the per-target lists.
	g.bwdIdx = make([]int32, len(b.pairs)+1)
	g.bwdCand = make([]int32, 0, total)
	g.bwdDist = make([]int32, 0, total)
	for w := range b.edgeCand {
		g.bwdIdx[w] = int32(len(g.bwdCand))
		g.bwdCand = append(g.bwdCand, b.edgeCand[w]...)
		g.bwdDist = append(g.bwdDist, b.edgeDist[w]...)
	}
	g.bwdIdx[len(b.pairs)] = int32(len(g.bwdCand))

	// Forward CSR: counting sort of the same edges by candidate.
	counts := make([]int32, b.numCand+1)
	for w := range b.edgeCand {
		for _, u := range b.edgeCand[w] {
			counts[u+1]++
		}
	}
	for u := 1; u <= b.numCand; u++ {
		counts[u] += counts[u-1]
	}
	g.fwdIdx = counts
	g.fwdPair = make([]int32, total)
	g.fwdDist = make([]int32, total)
	next := make([]int32, b.numCand)
	for w := range b.edgeCand {
		for i, u := range b.edgeCand[w] {
			pos := g.fwdIdx[u] + next[u]
			next[u]++
			g.fwdPair[pos] = int32(w)
			g.fwdDist[pos] = b.edgeDist[w][i]
		}
	}
	return g
}

// BuildPairsNaive is the ablation reference for the initialization
// phase: it computes all |P|² Definition-1 distances directly instead
// of using the bucket + ancestor-walk passes. Used only by tests and
// the ablation benchmark (DESIGN.md ablation 2).
func BuildPairsNaive(m model.Metric, pairs []model.Pair) *Graph {
	b := builder{
		metric:   m,
		pairs:    pairs,
		numCand:  len(pairs),
		edgeCand: make([][]int32, len(pairs)),
		edgeDist: make([][]int32, len(pairs)),
	}
	for w, target := range pairs {
		type edge struct{ cand, dist int32 }
		var edges []edge
		for u, cand := range pairs {
			if d := m.PairDistance(cand, target); d < model.Infinite {
				edges = append(edges, edge{int32(u), int32(d)})
			}
		}
		// Match the walker's non-decreasing-distance edge order so the
		// two builders produce comparable graphs.
		sort.SliceStable(edges, func(i, j int) bool { return edges[i].dist < edges[j].dist })
		for _, e := range edges {
			b.edgeCand[w] = append(b.edgeCand[w], e.cand)
			b.edgeDist[w] = append(b.edgeDist[w], e.dist)
		}
	}
	return b.finish()
}
