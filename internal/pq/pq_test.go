package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdered(t *testing.T) {
	m := NewMax(10)
	keys := []float64{3, 1, 4, 1.5, 9, 2.6, 5, 3.5, 8, 7}
	for id, k := range keys {
		m.Push(id, k)
	}
	if m.Len() != 10 {
		t.Fatalf("Len = %d, want 10", m.Len())
	}
	prev := 1e18
	for m.Len() > 0 {
		_, k := m.PopMax()
		if k > prev {
			t.Fatalf("pop order violated: %v after %v", k, prev)
		}
		prev = k
	}
}

func TestPeekMatchesPop(t *testing.T) {
	m := NewMax(4)
	m.Push(0, 1)
	m.Push(1, 5)
	m.Push(2, 3)
	pid, pk := m.PeekMax()
	id, k := m.PopMax()
	if pid != id || pk != k {
		t.Fatalf("Peek (%d,%v) != Pop (%d,%v)", pid, pk, id, k)
	}
	if id != 1 || k != 5 {
		t.Fatalf("PopMax = (%d,%v), want (1,5)", id, k)
	}
}

func TestUpdateRestoresOrder(t *testing.T) {
	m := NewMax(5)
	for id := 0; id < 5; id++ {
		m.Push(id, float64(id))
	}
	m.Update(0, 100) // smallest becomes largest
	if id, _ := m.PeekMax(); id != 0 {
		t.Fatalf("after Update(0,100) PeekMax id = %d, want 0", id)
	}
	m.Update(0, -100) // back to smallest
	if id, _ := m.PeekMax(); id != 4 {
		t.Fatalf("after Update(0,-100) PeekMax id = %d, want 4", id)
	}
	if got := m.Key(0); got != -100 {
		t.Fatalf("Key(0) = %v, want -100", got)
	}
}

func TestRemove(t *testing.T) {
	m := NewMax(5)
	for id := 0; id < 5; id++ {
		m.Push(id, float64(id))
	}
	m.Remove(4) // remove current max
	if id, _ := m.PeekMax(); id != 3 {
		t.Fatalf("after Remove(4) PeekMax id = %d, want 3", id)
	}
	m.Remove(0)
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if m.Contains(4) || m.Contains(0) {
		t.Fatal("removed items still reported as contained")
	}
}

func TestBuildFrom(t *testing.T) {
	keys := []float64{5, 2, 8, 1, 9, 3}
	m := NewMax(len(keys))
	m.BuildFrom(keys)
	want := append([]float64(nil), keys...)
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	for i, w := range want {
		_, k := m.PopMax()
		if k != w {
			t.Fatalf("pop %d = %v, want %v", i, k, w)
		}
	}
}

func TestReuseAfterPop(t *testing.T) {
	m := NewMax(3)
	m.Push(0, 1)
	m.PopMax()
	m.Push(0, 2) // re-push same id after pop must work
	if id, k := m.PeekMax(); id != 0 || k != 2 {
		t.Fatalf("re-pushed item wrong: (%d,%v)", id, k)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	m := NewMax(2)
	assertPanics("PopMax empty", func() { m.PopMax() })
	assertPanics("PeekMax empty", func() { m.PeekMax() })
	assertPanics("Push out of range", func() { m.Push(2, 0) })
	assertPanics("Push negative", func() { m.Push(-1, 0) })
	m.Push(0, 1)
	assertPanics("double Push", func() { m.Push(0, 2) })
	assertPanics("Update absent", func() { m.Update(1, 0) })
	assertPanics("Remove absent", func() { m.Remove(1) })
	assertPanics("Key absent", func() { m.Key(1) })
}

// TestQuickHeapOrder is a property test: for any sequence of keys,
// popping everything yields a non-increasing sequence, and every pushed
// key appears exactly once.
func TestQuickHeapOrder(t *testing.T) {
	f := func(keys []float64) bool {
		if len(keys) > 512 {
			keys = keys[:512]
		}
		m := NewMax(len(keys))
		for id, k := range keys {
			m.Push(id, k)
		}
		got := make([]float64, 0, len(keys))
		prev := 0.0
		for i := 0; m.Len() > 0; i++ {
			_, k := m.PopMax()
			if i > 0 && k > prev {
				return false
			}
			prev = k
			got = append(got, k)
		}
		want := append([]float64(nil), keys...)
		sort.Float64s(want)
		sort.Float64s(got)
		for i := range want {
			if want[i] != got[i] && !(want[i] != want[i] && got[i] != got[i]) { // allow NaN
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomOps interleaves push/pop/update/remove against a naive
// reference implementation.
func TestQuickRandomOps(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := NewMax(n)
		ref := map[int]float64{}
		for step := 0; step < 500; step++ {
			id := rng.Intn(n)
			switch op := rng.Intn(4); {
			case op == 0 && !m.Contains(id):
				k := rng.NormFloat64()
				m.Push(id, k)
				ref[id] = k
			case op == 1 && m.Contains(id):
				k := rng.NormFloat64()
				m.Update(id, k)
				ref[id] = k
			case op == 2 && m.Contains(id):
				m.Remove(id)
				delete(ref, id)
			case op == 3 && m.Len() > 0:
				pid, pk := m.PopMax()
				best := -1e18
				for _, v := range ref {
					if v > best {
						best = v
					}
				}
				if pk != best {
					t.Fatalf("trial %d step %d: PopMax key %v, reference max %v", trial, step, pk, best)
				}
				if ref[pid] != pk {
					t.Fatalf("trial %d step %d: popped id %d has reference key %v, want %v", trial, step, pid, ref[pid], pk)
				}
				delete(ref, pid)
			}
			if m.Len() != len(ref) {
				t.Fatalf("trial %d step %d: Len %d != reference %d", trial, step, m.Len(), len(ref))
			}
		}
	}
}
