// Package pq implements an indexed max-heap priority queue.
//
// The queue stores items identified by dense integer IDs in [0, n) and
// orders them by a float64 key. Unlike container/heap, it supports
// changing the key of an item that is already enqueued in O(log n),
// which the greedy summarizer (paper §4.4, Algorithm 2) needs: after a
// pair p is added to the summary, the marginal gains δ(q, F) of all
// neighbors-of-neighbors q of p change and their heap keys must be
// updated in place.
package pq

import "fmt"

// Max is an indexed max-heap keyed by float64. Item IDs must be dense
// integers in [0, capacity). The zero value is not usable; construct
// with NewMax.
type Max struct {
	heap []int     // heap[i] = item id at heap position i
	pos  []int     // pos[id] = heap position of id, or -1 if absent
	key  []float64 // key[id] = current key of id (valid while present)
}

// NewMax returns an empty indexed max-heap able to hold item IDs in
// [0, capacity).
func NewMax(capacity int) *Max {
	pos := make([]int, capacity)
	for i := range pos {
		pos[i] = -1
	}
	return &Max{
		heap: make([]int, 0, capacity),
		pos:  pos,
		key:  make([]float64, capacity),
	}
}

// Reset empties the queue and re-dimensions it for item IDs in
// [0, capacity), reusing the existing backing arrays when they are
// large enough. After Reset the queue behaves exactly like one freshly
// returned by NewMax(capacity); pooled greedy scratch relies on this
// to reuse heaps across solves without allocation.
func (m *Max) Reset(capacity int) {
	if cap(m.pos) < capacity {
		m.pos = make([]int, capacity)
		m.key = make([]float64, capacity)
		m.heap = make([]int, 0, capacity)
	}
	m.pos = m.pos[:capacity]
	m.key = m.key[:capacity]
	m.heap = m.heap[:0]
	for i := range m.pos {
		m.pos[i] = -1
	}
}

// Len reports the number of items currently enqueued.
func (m *Max) Len() int { return len(m.heap) }

// Contains reports whether item id is currently enqueued.
func (m *Max) Contains(id int) bool { return id >= 0 && id < len(m.pos) && m.pos[id] >= 0 }

// Key returns the current key of item id. It panics if id is not
// enqueued.
func (m *Max) Key(id int) float64 {
	if !m.Contains(id) {
		panic(fmt.Sprintf("pq: Key of absent item %d", id))
	}
	return m.key[id]
}

// Push inserts item id with the given key. It panics if id is out of
// range or already enqueued.
func (m *Max) Push(id int, key float64) {
	if id < 0 || id >= len(m.pos) {
		panic(fmt.Sprintf("pq: Push id %d out of range [0,%d)", id, len(m.pos)))
	}
	if m.pos[id] >= 0 {
		panic(fmt.Sprintf("pq: Push of already-enqueued item %d", id))
	}
	m.key[id] = key
	m.pos[id] = len(m.heap)
	m.heap = append(m.heap, id)
	m.up(len(m.heap) - 1)
}

// BuildFrom discards the current contents and heapifies all capacity
// items using keys[id] as the key of item id, in O(n). keys must have
// length equal to the capacity given to NewMax.
func (m *Max) BuildFrom(keys []float64) {
	if len(keys) != len(m.pos) {
		panic(fmt.Sprintf("pq: BuildFrom got %d keys for capacity %d", len(keys), len(m.pos)))
	}
	m.heap = m.heap[:0]
	copy(m.key, keys)
	for id := range keys {
		m.pos[id] = id
		m.heap = append(m.heap, id)
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
}

// PopMax removes and returns the item with the largest key and that
// key. It panics on an empty queue. Ties are broken arbitrarily but
// deterministically.
func (m *Max) PopMax() (id int, key float64) {
	if len(m.heap) == 0 {
		panic("pq: PopMax on empty queue")
	}
	id = m.heap[0]
	key = m.key[id]
	m.remove(0)
	return id, key
}

// PeekMax returns the item with the largest key without removing it.
// It panics on an empty queue.
func (m *Max) PeekMax() (id int, key float64) {
	if len(m.heap) == 0 {
		panic("pq: PeekMax on empty queue")
	}
	id = m.heap[0]
	return id, m.key[id]
}

// Remove deletes item id from the queue. It panics if id is not
// enqueued.
func (m *Max) Remove(id int) {
	if !m.Contains(id) {
		panic(fmt.Sprintf("pq: Remove of absent item %d", id))
	}
	m.remove(m.pos[id])
}

// Update changes the key of item id, restoring heap order. It panics
// if id is not enqueued.
func (m *Max) Update(id int, key float64) {
	if !m.Contains(id) {
		panic(fmt.Sprintf("pq: Update of absent item %d", id))
	}
	old := m.key[id]
	m.key[id] = key
	switch {
	case key > old:
		m.up(m.pos[id])
	case key < old:
		m.down(m.pos[id])
	}
}

func (m *Max) remove(i int) {
	id := m.heap[i]
	last := len(m.heap) - 1
	m.swap(i, last)
	m.heap = m.heap[:last]
	m.pos[id] = -1
	if i < last {
		m.down(i)
		m.up(i)
	}
}

func (m *Max) less(i, j int) bool {
	a, b := m.heap[i], m.heap[j]
	if m.key[a] != m.key[b] {
		return m.key[a] > m.key[b] // max-heap: larger key floats up
	}
	return a < b // deterministic tie-break by id
}

func (m *Max) swap(i, j int) {
	m.heap[i], m.heap[j] = m.heap[j], m.heap[i]
	m.pos[m.heap[i]] = i
	m.pos[m.heap[j]] = j
}

func (m *Max) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !m.less(i, parent) {
			return
		}
		m.swap(i, parent)
		i = parent
	}
}

func (m *Max) down(i int) {
	n := len(m.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && m.less(right, left) {
			best = right
		}
		if !m.less(best, i) {
			return
		}
		m.swap(i, best)
		i = best
	}
}
