// Package osars is an ontology- and sentiment-aware review
// summarization library, a from-scratch Go reproduction of
//
//	Le, Hristidis, Young — "Ontology- and Sentiment-Aware Review
//	Summarization", ICDE 2017 (full version: Le, Young, Hristidis,
//	WISE 2019).
//
// Given an item's customer reviews, a domain concept hierarchy (DAG)
// and a sentiment estimator, it selects the k most representative
// concept-sentiment pairs, sentences or whole reviews by minimizing
// the ontology-aware coverage cost of Definition 2, using the paper's
// greedy, randomized-rounding or exact ILP algorithm.
//
// Quick start:
//
//	ont := dataset.CellPhoneOntology()           // or build your own
//	s, _ := osars.New(osars.Config{Ontology: ont})
//	item := s.AnnotateItem("phone-1", "Acme Phone", reviews)
//	sum, _ := s.Summarize(item, 5, osars.Sentences, osars.MethodGreedy)
//	for _, line := range sum.Sentences { fmt.Println(line) }
package osars

import (
	"fmt"
	"math/rand"

	"osars/internal/coverage"
	"osars/internal/extract"
	"osars/internal/model"
	"osars/internal/ontology"
	"osars/internal/ontoreg"
	"osars/internal/sentiment"
	"osars/internal/summarize"
)

// Re-exported building blocks, so library users need only this
// package plus internal/ontology for building hierarchies.
type (
	// Ontology is the rooted concept DAG (see internal/ontology for
	// the Builder API).
	Ontology = ontology.Ontology
	// ConceptID identifies a concept within an Ontology.
	ConceptID = ontology.ConceptID
	// Pair is a concept-sentiment pair.
	Pair = model.Pair
	// Item is an annotated set of reviews ready for summarization.
	Item = model.Item
	// Review is one raw input review.
	Review = extract.RawReview
	// Estimator scores a tokenized sentence in [-1, +1].
	Estimator = sentiment.Estimator
	// Granularity selects what a summary is made of.
	Granularity = model.Granularity
)

// Granularities of the two coverage problems (§2).
const (
	// Pairs selects k concept-sentiment pairs (k-Pairs Coverage).
	Pairs = model.GranularityPairs
	// Sentences selects k review sentences (k-Sentences Coverage).
	Sentences = model.GranularitySentences
	// Reviews selects k whole reviews (k-Reviews Coverage).
	Reviews = model.GranularityReviews
)

// Method selects the summarization algorithm (§4).
type Method int

// The paper's three algorithms.
const (
	// MethodGreedy is Algorithm 2: fast, within a Wolsey-type factor
	// of optimal (Theorem 4); the paper's recommended default.
	MethodGreedy Method = iota
	// MethodRR is Algorithm 1: LP relaxation + randomized rounding
	// (Theorem 3 bound).
	MethodRR
	// MethodILP solves the k-medians integer program exactly.
	MethodILP
	// MethodLocalSearch is an extension beyond the paper: greedy
	// followed by 1-swap local search (Arya et al. 2004) — never worse
	// than greedy, usually closing most of its gap to optimal.
	MethodLocalSearch
)

func (m Method) String() string {
	switch m {
	case MethodGreedy:
		return "greedy"
	case MethodRR:
		return "randomized-rounding"
	case MethodILP:
		return "ilp"
	case MethodLocalSearch:
		return "local-search"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config configures a Summarizer.
type Config struct {
	// Ontology is the domain concept hierarchy. Required.
	Ontology *Ontology
	// Epsilon is the sentiment threshold ε of Definition 1
	// (default 0.5, the elbow the paper selects in §5.3).
	Epsilon float64
	// Lexicon optionally replaces the built-in opinion-word table with
	// a custom word → prior-polarity map (values in [-1, +1]). Mutually
	// exclusive with Estimator.
	Lexicon map[string]float64
	// Estimator scores sentence sentiment (default: the unsupervised
	// lexicon scorer over Lexicon, or the built-in table).
	Estimator Estimator
	// Seed drives randomized rounding (default 1).
	Seed int64
}

// Summarizer is the top-level entry point. Safe for concurrent use.
type Summarizer struct {
	rt       *ontoreg.Runtime
	metric   model.Metric
	pipeline *extract.Pipeline
	seed     int64
}

// New validates the config and builds a Summarizer.
func New(cfg Config) (*Summarizer, error) {
	if cfg.Ontology == nil {
		return nil, fmt.Errorf("osars: Config.Ontology is required")
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.5
	}
	if cfg.Epsilon < 0 {
		return nil, fmt.Errorf("osars: Epsilon must be positive, got %v", cfg.Epsilon)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var rt *ontoreg.Runtime
	if cfg.Estimator == nil {
		// The default (lexicon-scored) configuration is expressible as a
		// registry entry, so the summarizer's runtime gets a real content
		// version: a store opened from it keys its summary cache by that
		// version and can durably re-activate the same entry later.
		ent, err := ontoreg.NewEntry(ontoreg.ConfigVersion, cfg.Ontology, cfg.Lexicon, cfg.Epsilon)
		if err != nil {
			return nil, err
		}
		rt = ent.Runtime()
	} else {
		if len(cfg.Lexicon) > 0 {
			return nil, fmt.Errorf("osars: Config.Lexicon and Config.Estimator are mutually exclusive")
		}
		// A custom estimator cannot be serialized into an entry; the
		// runtime serves fine but cannot be durably activated.
		rt = ontoreg.ConfigRuntime(
			model.Metric{Ont: cfg.Ontology, Epsilon: cfg.Epsilon},
			extract.NewPipeline(extract.NewMatcher(cfg.Ontology), cfg.Estimator),
		)
	}
	return &Summarizer{
		rt:       rt,
		metric:   rt.Metric,
		pipeline: rt.Pipeline,
		seed:     cfg.Seed,
	}, nil
}

// Metric exposes the configured Definition-1/2 metric (for custom
// evaluation).
func (s *Summarizer) Metric() model.Metric { return s.metric }

// Runtime returns the summarizer's compiled ontology runtime: the
// (ontology, lexicon, ε) triple plus its content version. Stores
// opened from this summarizer start on it; pass other runtimes
// (resolved from an OntologyRegistry) to AnnotateItemWith /
// SummarizeWith for per-request multi-domain serving.
func (s *Summarizer) Runtime() *OntologyRuntime { return s.rt }

// AnnotateItem runs the extraction pipeline (§5.1): sentence
// splitting, ontology concept matching and sentence-level sentiment.
// Annotation is fanned out across GOMAXPROCS workers (the pipeline's
// matcher and estimator are read-only); the result is deterministic
// and identical to sequential annotation.
func (s *Summarizer) AnnotateItem(id, name string, reviews []Review) *Item {
	return s.pipeline.AnnotateItemParallel(id, name, reviews, 0)
}

// AnnotateItemWorkers is AnnotateItem with an explicit worker count
// (≤ 0 means GOMAXPROCS, 1 forces sequential annotation).
func (s *Summarizer) AnnotateItemWorkers(id, name string, reviews []Review, workers int) *Item {
	return s.pipeline.AnnotateItemParallel(id, name, reviews, workers)
}

// Summary is a computed review summary.
type Summary struct {
	// Granularity the summary was built at.
	Granularity Granularity
	// Method that produced it.
	Method Method
	// Cost is the Definition-2 coverage cost of the selection.
	Cost float64
	// Indices are the selected candidate indices: pair indices into
	// Item.Pairs() for Pairs, flattened sentence indices for
	// Sentences, review indices for Reviews.
	Indices []int
	// Pairs is the selected pairs (Pairs granularity only).
	Pairs []Pair
	// Sentences is the selected sentence texts (Sentences granularity
	// only), in selection order.
	Sentences []string
	// ReviewIDs is the selected review IDs (Reviews granularity only).
	ReviewIDs []string
}

// Summarize selects the k most representative units of the item at
// the given granularity. k is clamped to the number of available
// candidates.
func (s *Summarizer) Summarize(item *Item, k int, g Granularity, m Method) (*Summary, error) {
	return summarizeWithMetric(s.metric, s.seed, item, k, g, m)
}

// AnnotateItemWith is AnnotateItem under an explicit ontology runtime
// (per-request domain selection): the item is annotated by rt's
// pipeline instead of the summarizer's own.
func (s *Summarizer) AnnotateItemWith(rt *OntologyRuntime, id, name string, reviews []Review) *Item {
	return rt.Pipeline.AnnotateItemParallel(id, name, reviews, 0)
}

// SummarizeWith is Summarize under an explicit ontology runtime: the
// coverage graph is built with rt's metric. The item must have been
// annotated under the SAME runtime (its pair ConceptIDs index rt's
// ontology).
func (s *Summarizer) SummarizeWith(rt *OntologyRuntime, item *Item, k int, g Granularity, m Method) (*Summary, error) {
	return summarizeWithMetric(rt.Metric, s.seed, item, k, g, m)
}

// summarizeWithMetric is the metric-parameterized solve shared by
// Summarize and SummarizeWith.
func summarizeWithMetric(metric model.Metric, seed int64, item *Item, k int, g Granularity, m Method) (*Summary, error) {
	if k < 0 {
		return nil, fmt.Errorf("osars: k must be nonnegative, got %d", k)
	}
	graph := coverage.Build(metric, item, g)
	if k > graph.NumCandidates {
		k = graph.NumCandidates
	}
	var res *summarize.Result
	var err error
	switch m {
	case MethodGreedy:
		res = summarize.Greedy(graph, k)
	case MethodRR:
		res, err = summarize.RandomizedRounding(graph, k, rand.New(rand.NewSource(seed)), nil)
	case MethodILP:
		res, err = summarize.ILP(graph, k, nil)
	case MethodLocalSearch:
		res = summarize.LocalSearch(graph, k, nil)
	default:
		return nil, fmt.Errorf("osars: unknown method %v", m)
	}
	if err != nil {
		return nil, err
	}
	out := &Summary{Granularity: g, Method: m, Cost: res.Cost, Indices: res.Selected}
	switch g {
	case Pairs:
		all := item.Pairs()
		for _, idx := range res.Selected {
			out.Pairs = append(out.Pairs, all[idx])
		}
	case Sentences:
		texts := sentenceTexts(item)
		for _, idx := range res.Selected {
			out.Sentences = append(out.Sentences, texts[idx])
		}
	case Reviews:
		for _, idx := range res.Selected {
			out.ReviewIDs = append(out.ReviewIDs, item.Reviews[idx].ID)
		}
	}
	return out, nil
}

// DescribePair renders a pair like "screen resolution = +0.75" using
// the configured ontology.
func (s *Summarizer) DescribePair(p Pair) string {
	return fmt.Sprintf("%s = %+.2f", s.metric.Ont.Name(p.Concept), p.Sentiment)
}

func sentenceTexts(item *Item) []string {
	var out []string
	for ri := range item.Reviews {
		for si := range item.Reviews[ri].Sentences {
			out = append(out, item.Reviews[ri].Sentences[si].Text)
		}
	}
	return out
}
