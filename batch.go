package osars

import (
	"runtime"
	"sync"
)

// BatchRequest is one unit of work for SummarizeBatch.
type BatchRequest struct {
	Item        *Item
	K           int
	Granularity Granularity
	Method      Method
}

// BatchResult pairs a request's summary with its error; exactly one of
// the two fields is set.
type BatchResult struct {
	Summary *Summary
	Err     error
}

// SummarizeBatch runs many summarizations concurrently with a bounded
// worker pool and returns results aligned with the requests. workers ≤
// 0 uses GOMAXPROCS. The Summarizer is safe to share across workers:
// each request builds its own coverage graph.
func (s *Summarizer) SummarizeBatch(reqs []BatchRequest, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	results := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sum, err := s.Summarize(reqs[i].Item, reqs[i].K, reqs[i].Granularity, reqs[i].Method)
				results[i] = BatchResult{Summary: sum, Err: err}
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
