package osars

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"osars/internal/model"
)

// BatchRequest is one unit of work for SummarizeBatch. Exactly one of
// Item (a pre-annotated item) or Reviews (raw reviews, annotated by
// the batch's shared annotation pool before solving) should be set;
// when both are set, Item wins and Reviews is ignored. ItemID/ItemName
// label the item built from Reviews.
type BatchRequest struct {
	Item        *Item
	ItemID      string
	ItemName    string
	Reviews     []Review
	K           int
	Granularity Granularity
	Method      Method
}

// BatchResult pairs a request's summary with its error; exactly one of
// the two fields is set.
type BatchResult struct {
	Summary *Summary
	Err     error
}

// SummarizeBatch runs many summarizations concurrently with a bounded
// worker pool and returns results aligned with the requests. workers ≤
// 0 uses GOMAXPROCS; the count is clamped to len(reqs). The Summarizer
// is safe to share across workers: each request builds its own
// coverage graph.
func (s *Summarizer) SummarizeBatch(reqs []BatchRequest, workers int) []BatchResult {
	return s.SummarizeBatchCtx(context.Background(), reqs, workers)
}

// annotateBatch resolves every request to an annotated *Item. Raw-
// review requests are annotated through ONE worker pool shared across
// the whole batch (flattened to per-review jobs), rather than each
// solve worker annotating its own item ad hoc: a batch of many small
// items still saturates the cores, and annotation parallelism never
// multiplies with solve parallelism. Returns early (with items
// partially filled) if ctx fires; the caller's dispatch loop then
// fails every slot with ctx.Err() before any partial item is solved.
func (s *Summarizer) annotateBatch(ctx context.Context, reqs []BatchRequest, workers int) []*Item {
	items := make([]*Item, len(reqs))
	type job struct{ req, rev int }
	var jobs []job
	for i := range reqs {
		if reqs[i].Item != nil {
			items[i] = reqs[i].Item
			continue
		}
		items[i] = &Item{ID: reqs[i].ItemID, Name: reqs[i].ItemName}
		if n := len(reqs[i].Reviews); n > 0 {
			items[i].Reviews = make([]model.Review, n)
			for j := 0; j < n; j++ {
				jobs = append(jobs, job{i, j})
			}
		}
	}
	if len(jobs) == 0 {
		return items
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				rr := &reqs[jobs[j].req].Reviews[jobs[j].rev]
				items[jobs[j].req].Reviews[jobs[j].rev] =
					s.pipeline.AnnotateReview(rr.ID, rr.Text, rr.Rating)
			}
		}()
	}
	wg.Wait()
	return items
}

// SummarizeBatchCtx is SummarizeBatch with cancellation. When ctx is
// cancelled, in-flight summarizations run to completion (workers
// drain), no new ones start, and every unprocessed slot carries
// ctx.Err(). The result slice is always fully populated and aligned
// with reqs.
func (s *Summarizer) SummarizeBatchCtx(ctx context.Context, reqs []BatchRequest, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Clamp: more workers than requests only spawns goroutines that
	// immediately exit, but the annotation pool below keys off the
	// count, so keep it tight.
	if workers > len(reqs) {
		workers = len(reqs)
	}
	results := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return results
	}

	// Phase 1: resolve raw-review requests through the shared
	// annotation pool (full GOMAXPROCS — annotation is the cold path's
	// dominant cost and the solve pool hasn't started yet).
	items := s.annotateBatch(ctx, reqs, runtime.GOMAXPROCS(0))

	// Phase 2: solve with a bounded worker pool.
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A job may have been handed out just as the context
				// fired; fail it fast rather than solving doomed work.
				if err := ctx.Err(); err != nil {
					results[i] = BatchResult{Err: err}
					continue
				}
				sum, err := s.Summarize(items[i], reqs[i].K, reqs[i].Granularity, reqs[i].Method)
				results[i] = BatchResult{Summary: sum, Err: err}
			}
		}()
	}
dispatch:
	for i := range reqs {
		select {
		case <-ctx.Done():
			for j := i; j < len(reqs); j++ {
				results[j] = BatchResult{Err: ctx.Err()}
			}
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	return results
}
