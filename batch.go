package osars

import (
	"context"
	"runtime"
	"sync"
)

// BatchRequest is one unit of work for SummarizeBatch.
type BatchRequest struct {
	Item        *Item
	K           int
	Granularity Granularity
	Method      Method
}

// BatchResult pairs a request's summary with its error; exactly one of
// the two fields is set.
type BatchResult struct {
	Summary *Summary
	Err     error
}

// SummarizeBatch runs many summarizations concurrently with a bounded
// worker pool and returns results aligned with the requests. workers ≤
// 0 uses GOMAXPROCS. The Summarizer is safe to share across workers:
// each request builds its own coverage graph.
func (s *Summarizer) SummarizeBatch(reqs []BatchRequest, workers int) []BatchResult {
	return s.SummarizeBatchCtx(context.Background(), reqs, workers)
}

// SummarizeBatchCtx is SummarizeBatch with cancellation. When ctx is
// cancelled, in-flight summarizations run to completion (workers
// drain), no new ones start, and every unprocessed slot carries
// ctx.Err(). The result slice is always fully populated and aligned
// with reqs.
func (s *Summarizer) SummarizeBatchCtx(ctx context.Context, reqs []BatchRequest, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	results := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A job may have been handed out just as the context
				// fired; fail it fast rather than solving doomed work.
				if err := ctx.Err(); err != nil {
					results[i] = BatchResult{Err: err}
					continue
				}
				sum, err := s.Summarize(reqs[i].Item, reqs[i].K, reqs[i].Granularity, reqs[i].Method)
				results[i] = BatchResult{Summary: sum, Err: err}
			}
		}()
	}
dispatch:
	for i := range reqs {
		select {
		case <-ctx.Done():
			for j := i; j < len(reqs); j++ {
				results[j] = BatchResult{Err: ctx.Err()}
			}
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	return results
}
