module osars

go 1.22
